#include "rt/thread_cluster.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "power/simulated_rapl.hpp"

namespace penelope::rt {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point process_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

Clock::time_point to_time_point(common::Ticks ticks) {
  return process_epoch() + std::chrono::microseconds(ticks);
}

}  // namespace

common::Ticks wall_ticks() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - process_epoch())
      .count();
}

/// A request in flight between threads: the pool replies directly into
/// the requester's mailbox.
struct PoolRequestMsg {
  core::PowerRequest request;
  Mailbox<core::PowerGrant>* reply = nullptr;
};

struct ThreadCluster::Node {
  Node(const ThreadClusterConfig& config, int node_id,
       std::vector<DemandPhase> demand_script)
      : id(node_id),
        rapl([&] {
          power::SimulatedRaplConfig rc;
          rc.safe_range = config.safe_range;
          rc.tau_seconds = config.rapl_tau_seconds;
          rc.idle_watts = config.idle_watts;
          rc.initial_cap_watts = config.initial_cap_watts;
          rc.initial_demand_watts = demand_script.empty()
                                        ? config.idle_watts
                                        : demand_script.front().demand_watts;
          rc.seed = config.seed ^ (0x100001b3ULL * (node_id + 1));
          return rc;
        }()),
        pool(config.pool),
        decider([&] {
          core::DeciderConfig dc;
          dc.initial_cap_watts = config.initial_cap_watts;
          dc.epsilon_watts = config.epsilon_watts;
          dc.safe_range = config.safe_range;
          dc.txn_node = node_id;
          return dc;
        }(), pool),
        script(std::move(demand_script)),
        rng(config.seed ^ (0xc6a4a793ULL * (node_id + 1))) {}

  int id;
  power::SimulatedRapl rapl;
  core::PowerPool pool;
  core::Decider decider;
  Mailbox<PoolRequestMsg> inbox;
  Mailbox<core::PowerGrant> reply_box;
  /// At-most-once receive windows. Each is touched by exactly one
  /// thread: request_window by the pool thread, grant_window by the
  /// decider thread (and by run_for's drain, after the joins).
  core::TxnWindow request_window;
  core::TxnWindow grant_window;
  std::vector<DemandPhase> script;
  common::Rng rng;
  /// Crash–restart churn. `down` is written by the decider thread and
  /// read by the pool thread (drop requests while down, like a dead
  /// node) and by peer deciders (their probes simply time out — they
  /// never read it; only the pool-side drop matters).
  /// `reset_request_window` hands the restart's window wipe to the pool
  /// thread, which owns that window — resetting it from the decider
  /// thread would race a concurrent insert.
  std::atomic<bool> down{false};
  std::atomic<bool> reset_request_window{false};
  std::atomic<std::uint32_t> incarnation{1};
  /// Watts seized by the last crash (cap share above the safe floor,
  /// drained pool, banked reply-box grants). Written by the decider
  /// thread; read by the main thread after the joins.
  std::atomic<double> orphaned{0.0};
  /// This node's slice of config.crash_events, sorted by time:
  /// (crash_at, restart_at) wall offsets. Decider-thread private.
  std::vector<std::pair<common::Ticks, common::Ticks>> crash_plan;
  telemetry::Counter crashes;
  telemetry::Counter restarts;
  /// Registry-backed counters (updated lock-free from both of this
  /// node's threads, aggregated by ThreadCluster::metrics_snapshot).
  telemetry::Counter grants_received;
  telemetry::Counter timeouts;
  telemetry::Counter duplicates_dropped;
  telemetry::Counter requests_sent;
  std::jthread pool_thread;
  std::jthread decider_thread;
};

ThreadCluster::ThreadCluster(
    ThreadClusterConfig config,
    std::vector<std::vector<DemandPhase>> demand_scripts)
    : config_(config) {
  PEN_CHECK(config_.n_nodes >= 2);
  PEN_CHECK_MSG(
      demand_scripts.size() == static_cast<std::size_t>(config_.n_nodes),
      "need one demand script per node");
  if (config_.flight_recorder_capacity > 0)
    recorder_.enable(config_.flight_recorder_capacity);
  for (int i = 0; i < config_.n_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(
        config_, i, std::move(demand_scripts[static_cast<std::size_t>(i)])));
    Node& node = *nodes_.back();
    telemetry::Labels labels{{"node", std::to_string(i)}};
    node.grants_received =
        registry_.counter("rt_grants_applied_total", labels,
                          "peer grants applied by the decider");
    node.timeouts = registry_.counter(
        "rt_timeouts_total", labels, "requests resolved by timeout");
    node.duplicates_dropped =
        registry_.counter("rt_duplicates_dropped_total", labels,
                          "redeliveries rejected by a TxnWindow");
    node.requests_sent = registry_.counter(
        "rt_requests_sent_total", labels, "power requests sent to peers");
    node.crashes = registry_.counter("rt_crashes_total", labels,
                                     "scripted node crashes executed");
    node.restarts = registry_.counter(
        "rt_restarts_total", labels,
        "crash recoveries (incarnation bumps)");
    for (const ThreadCrashEvent& ev : config_.crash_events) {
      if (ev.node == i) {
        PEN_CHECK(ev.down_for > 0);
        node.crash_plan.emplace_back(ev.at, ev.at + ev.down_for);
      }
    }
    std::sort(node.crash_plan.begin(), node.crash_plan.end());
  }
}

ThreadCluster::~ThreadCluster() = default;

void ThreadCluster::pool_loop(Node& node, std::stop_token stop) {
  common::set_log_node(node.id);
  while (!stop.stop_requested()) {
    std::optional<PoolRequestMsg> msg = node.inbox.pop();
    if (!msg) break;  // mailbox closed: shutdown
    if (node.reset_request_window.exchange(false,
                                           std::memory_order_acq_rel)) {
      // Restart: the pre-crash window is volatile state that died with
      // the process; the pool thread wipes it because it owns it.
      node.request_window.reset();
    }
    if (node.down.load(std::memory_order_acquire)) {
      // Dead node: the request falls into the void and the requester
      // times out. No window insert — a retry of this transaction after
      // the restart deserves a real answer.
      continue;
    }
    if (!node.request_window.insert(msg->request.txn_id)) {
      // Redelivered request: the first copy's grant already answered
      // this transaction; serving again would debit the pool twice.
      node.duplicates_dropped.inc();
      recorder_.record(wall_ticks(), msg->request.txn_id,
                       telemetry::TxnEventKind::kDuplicateDropped, node.id,
                       -1, 0.0);
      continue;
    }
    double granted = node.pool.serve(msg->request);
    recorder_.record(wall_ticks(), msg->request.txn_id,
                     telemetry::TxnEventKind::kRequestServed, node.id, -1,
                     granted);
    core::PowerGrant grant{granted, msg->request.txn_id};
    if (!msg->reply->try_push(grant) && granted > 0.0) {
      // Requester is gone (shutdown) or its box is full: return the
      // watts rather than strand them in a lost message.
      node.pool.deposit(granted);
      recorder_.record(wall_ticks(), msg->request.txn_id,
                       telemetry::TxnEventKind::kBanked, node.id, -1,
                       granted);
    }
  }
}

void ThreadCluster::decider_loop(Node& node, std::stop_token stop) {
  common::set_log_node(node.id);
  const common::Ticks start = wall_ticks();
  std::size_t phase_idx = 0;
  common::Ticks phase_start = start;
  if (!node.script.empty()) {
    node.rapl.set_demand(node.script.front().demand_watts, start);
  }
  node.rapl.set_cap(node.decider.cap());

  common::Ticks next_tick = start + config_.period;
  std::size_t crash_idx = 0;
  while (!stop.stop_requested()) {
    std::this_thread::sleep_until(to_time_point(next_tick));
    if (stop.stop_requested()) break;
    common::Ticks now = wall_ticks();

    if (crash_idx < node.crash_plan.size() &&
        !node.down.load(std::memory_order_relaxed) &&
        now - start >= node.crash_plan[crash_idx].first) {
      // Crash: volatile state dies. The cap collapses to the safe
      // floor; the pool, the cap share above it, and any banked
      // reply-box grants are orphaned until the restart self-reclaims
      // them (or the run ends with the node still down).
      node.down.store(true, std::memory_order_release);
      double residue = node.pool.drain() + node.decider.seize_for_restart();
      while (auto grant = node.reply_box.try_pop())
        residue += grant->watts;
      node.rapl.set_cap(node.decider.cap());
      node.orphaned.fetch_add(residue, std::memory_order_acq_rel);
      node.crashes.inc();
      recorder_.record(now, 0, telemetry::TxnEventKind::kStranded, node.id,
                       -1, residue);
    }
    if (node.down.load(std::memory_order_relaxed)) {
      if (now < start + node.crash_plan[crash_idx].second) {
        next_tick += config_.period;  // still down: idle at the floor
        continue;
      }
      // Restart: bumped incarnation, both TxnWindows wiped (the pool
      // thread wipes its own), late grants drained, orphaned watts
      // self-reclaimed into the fresh pool.
      node.incarnation.fetch_add(1, std::memory_order_acq_rel);
      node.grant_window.reset();
      node.reset_request_window.store(true, std::memory_order_release);
      double late = 0.0;
      while (auto grant = node.reply_box.try_pop()) late += grant->watts;
      double leftover =
          node.orphaned.exchange(0.0, std::memory_order_acq_rel) + late;
      if (leftover > 0.0) node.pool.deposit(leftover);
      node.down.store(false, std::memory_order_release);
      node.restarts.inc();
      recorder_.record(now, 0, telemetry::TxnEventKind::kReclaimed,
                       node.id, node.id, leftover);
      ++crash_idx;
    }

    // Walk the demand script forward; the final phase persists.
    while (phase_idx + 1 < node.script.size() &&
           now - phase_start >= node.script[phase_idx].duration) {
      phase_start += node.script[phase_idx].duration;
      ++phase_idx;
      node.rapl.set_demand(node.script[phase_idx].demand_watts, now);
    }

    double avg_power = node.rapl.read_average_power(now);
    core::StepOutcome outcome = node.decider.begin_step(avg_power);
    node.rapl.set_cap(node.decider.cap());

    if (outcome.kind == core::StepKind::kNeedsPeer) {
      auto peer_idx = static_cast<int>(node.rng.next_below(
          static_cast<std::uint32_t>(config_.n_nodes - 1)));
      if (peer_idx >= node.id) ++peer_idx;
      Node& peer = *nodes_[static_cast<std::size_t>(peer_idx)];

      bool matched = false;
      if (peer.inbox.try_push(
              PoolRequestMsg{outcome.request, &node.reply_box})) {
        node.requests_sent.inc();
        recorder_.record(wall_ticks(), outcome.request.txn_id,
                         telemetry::TxnEventKind::kRequestSent, node.id,
                         peer_idx, outcome.request.alpha_watts);
        const auto deadline =
            Clock::now() +
            std::chrono::microseconds(config_.request_timeout);
        while (!matched) {
          std::optional<core::PowerGrant> grant =
              node.reply_box.pop_until(deadline);
          if (!grant) break;  // deadline passed or mailbox closed
          if (!node.grant_window.insert(grant->txn_id)) {
            node.duplicates_dropped.inc();
            recorder_.record(wall_ticks(), grant->txn_id,
                             telemetry::TxnEventKind::kDuplicateDropped,
                             node.id, -1, grant->watts);
            continue;  // redelivered grant: already applied or banked
          }
          if (grant->txn_id == outcome.request.txn_id) {
            node.decider.complete_peer_grant(grant->watts);
            node.grants_received.inc();
            recorder_.record(wall_ticks(), grant->txn_id,
                             telemetry::TxnEventKind::kGrantReceived,
                             node.id, peer_idx, grant->watts);
            matched = true;
          } else if (grant->watts > 0.0) {
            // A stale grant from an earlier timed-out round: bank it.
            node.pool.deposit(grant->watts);
            recorder_.record(wall_ticks(), grant->txn_id,
                             telemetry::TxnEventKind::kBanked, node.id, -1,
                             grant->watts);
          }
        }
      }
      if (!matched) {
        node.decider.complete_peer_grant(0.0);
        node.timeouts.inc();
        recorder_.record(wall_ticks(), outcome.request.txn_id,
                         telemetry::TxnEventKind::kTimeout, node.id,
                         peer_idx, 0.0);
      }
      node.rapl.set_cap(node.decider.cap());
    }

    node.decider.finish_step();
    node.rapl.set_cap(node.decider.cap());
    next_tick += config_.period;
  }
}

void ThreadCluster::run_for(common::Ticks duration) {
  PEN_CHECK(!running_.exchange(true));
  for (auto& node : nodes_) {
    Node* n = node.get();
    node->pool_thread = std::jthread(
        [this, n](std::stop_token st) { pool_loop(*n, st); });
    node->decider_thread = std::jthread(
        [this, n](std::stop_token st) { decider_loop(*n, st); });
  }

  std::this_thread::sleep_for(std::chrono::microseconds(duration));

  for (auto& node : nodes_) {
    node->decider_thread.request_stop();
    node->pool_thread.request_stop();
  }
  // Closing mailboxes wakes blocked pops; jthread destructors would join
  // anyway, but joining deciders before pools avoids deciders blocking on
  // replies from already-stopped pools longer than one timeout.
  for (auto& node : nodes_) {
    node->reply_box.close();
  }
  for (auto& node : nodes_) {
    if (node->decider_thread.joinable()) node->decider_thread.join();
  }
  for (auto& node : nodes_) {
    node->inbox.close();
    if (node->pool_thread.joinable()) node->pool_thread.join();
  }

  // Drain reply boxes: grants that raced shutdown carry real watts.
  // The same window applies — a duplicate that raced shutdown must not
  // deposit twice either.
  for (auto& node : nodes_) {
    while (auto grant = node->reply_box.try_pop()) {
      if (!node->grant_window.insert(grant->txn_id)) {
        node->duplicates_dropped.inc();
        continue;
      }
      if (grant->watts > 0.0) {
        node->pool.deposit(grant->watts);
        recorder_.record(wall_ticks(), grant->txn_id,
                         telemetry::TxnEventKind::kBanked, node->id, -1,
                         grant->watts);
      }
    }
  }
  running_ = false;
}

std::vector<ThreadNodeReport> ThreadCluster::reports() const {
  std::vector<ThreadNodeReport> reports;
  for (const auto& node : nodes_) {
    ThreadNodeReport report;
    report.id = node->id;
    report.final_cap = node->decider.cap();
    report.final_pool = node->pool.available();
    report.decider = node->decider.stats();
    report.pool = node->pool.stats();
    report.grants_received = node->grants_received.value();
    report.timeouts = node->timeouts.value();
    report.duplicates_dropped = node->duplicates_dropped.value();
    report.crashes = node->crashes.value();
    report.restarts = node->restarts.value();
    report.incarnation = node->incarnation.load(std::memory_order_acquire);
    report.orphaned_watts = node->orphaned.load(std::memory_order_acquire);
    reports.push_back(report);
  }
  return reports;
}

double ThreadCluster::total_live_watts() const {
  double total = 0.0;
  for (const auto& node : nodes_) {
    total += node->decider.cap() + node->pool.available();
  }
  return total;
}

double ThreadCluster::orphaned_watts() const {
  double total = 0.0;
  for (const auto& node : nodes_)
    total += node->orphaned.load(std::memory_order_acquire);
  return total;
}

double ThreadCluster::budget() const {
  return config_.initial_cap_watts * config_.n_nodes;
}

}  // namespace penelope::rt
