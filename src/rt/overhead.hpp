// §4.2 overhead measurement: "we measure the runtime of each workload
// ... on a single node under a static cap. We then run all the workloads
// again, but this time launching Penelope on this node ... We define
// overhead as the percent slowdown of running with Penelope versus under
// a static cap."
//
// Here the workload is a real CPU kernel (a checksum loop calibrated in
// work units), and "launching Penelope" means running the decider thread
// and the pool-service thread beside it — on this machine they compete
// for the same core, which is the honest worst case for overhead. The
// decider drives a SimulatedRapl instance; no power is shared (one-node
// system), exactly as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace penelope::rt {

struct OverheadConfig {
  /// Decider period while the workload runs. The paper uses 1 s; the
  /// default here is shorter so the experiment finishes quickly — this
  /// *overstates* overhead relative to the paper (more decider wakeups
  /// per second of work), making the comparison conservative.
  common::Ticks decider_period = common::from_millis(50);
  /// Approximate seconds of spin work per measured run.
  double work_seconds = 0.4;
  /// Repetitions per workload; the median run is reported.
  int repetitions = 3;
  std::uint64_t seed = 42;
};

struct OverheadResult {
  std::string workload;
  double baseline_seconds = 0.0;   ///< static cap, no Penelope
  double penelope_seconds = 0.0;   ///< with decider + pool threads
  double overhead_fraction = 0.0;  ///< penelope/baseline - 1
};

/// Run the overhead experiment over the 9 NPB workload names; the spin
/// work per app is proportional to its profile's total work so the
/// report has the paper's per-application structure.
std::vector<OverheadResult> measure_overhead(const OverheadConfig& config);

/// The calibrated spin kernel, exposed for tests: burns roughly
/// `work_units` of deterministic CPU work and returns a checksum (so the
/// optimizer cannot delete it).
std::uint64_t spin_kernel(std::uint64_t work_units);

}  // namespace penelope::rt
