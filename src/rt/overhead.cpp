#include "rt/overhead.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/check.hpp"
#include "core/decider.hpp"
#include "core/pool.hpp"
#include "power/simulated_rapl.hpp"
#include "workload/npb.hpp"

namespace penelope::rt {

namespace {
using Clock = std::chrono::steady_clock;

double time_spin(std::uint64_t work_units) {
  auto start = Clock::now();
  volatile std::uint64_t sink = spin_kernel(work_units);
  (void)sink;
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Calibrate how many work units fill one second on this machine.
std::uint64_t calibrate_units_per_second() {
  std::uint64_t units = 1 << 20;
  double elapsed = time_spin(units);
  while (elapsed < 0.05) {  // get into a measurable range first
    units *= 4;
    elapsed = time_spin(units);
  }
  return static_cast<std::uint64_t>(static_cast<double>(units) / elapsed);
}

/// The "Penelope on this node" half: decider + pool-service threads
/// running beside the measured workload, against a SimulatedRapl. One
/// node means no peers: hungry steps drain the (empty) local pool and
/// hold, matching the paper's one-node overhead setup.
class SingleNodePenelope {
 public:
  explicit SingleNodePenelope(const OverheadConfig& config)
      : pool_(core::PoolConfig{}),
        decider_(
            core::DeciderConfig{
                120.0, 5.0,
                power::SafeRange{.min_watts = 40.0, .max_watts = 250.0}},
            pool_),
        rapl_([&] {
          power::SimulatedRaplConfig rc;
          rc.safe_range = {.min_watts = 40.0, .max_watts = 250.0};
          rc.initial_cap_watts = 120.0;
          rc.initial_demand_watts = 150.0;
          rc.seed = config.seed;
          return rc;
        }()),
        period_(config.decider_period) {
    decider_thread_ = std::jthread([this](std::stop_token st) {
      auto next = Clock::now() + std::chrono::microseconds(period_);
      common::Ticks t = 0;
      while (!st.stop_requested()) {
        std::this_thread::sleep_until(next);
        if (st.stop_requested()) break;
        t += period_;
        double p = rapl_.read_average_power(t);
        core::StepOutcome outcome = decider_.begin_step(p);
        rapl_.set_cap(decider_.cap());
        if (outcome.kind == core::StepKind::kNeedsPeer) {
          // One-node system: there is no peer; resolve with nothing.
          decider_.complete_peer_grant(0.0);
        }
        decider_.finish_step();
        rapl_.set_cap(decider_.cap());
        next += std::chrono::microseconds(period_);
      }
    });
    // The pool-service thread: idles on a poll interval since no peer
    // traffic exists, but it wakes and takes the pool lock exactly as a
    // served node's would.
    pool_thread_ = std::jthread([this](std::stop_token st) {
      while (!st.stop_requested()) {
        std::this_thread::sleep_for(std::chrono::microseconds(period_));
        (void)pool_.available();
      }
    });
  }

  ~SingleNodePenelope() {
    decider_thread_.request_stop();
    pool_thread_.request_stop();
  }

 private:
  core::PowerPool pool_;
  core::Decider decider_;
  power::SimulatedRapl rapl_;
  common::Ticks period_;
  std::jthread decider_thread_;
  std::jthread pool_thread_;
};

double median_of(std::vector<double> times) {
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

std::uint64_t spin_kernel(std::uint64_t work_units) {
  // FNV-ish mixing loop: cheap, integer-only, impossible to vectorize
  // away, and deterministic.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t i = 0; i < work_units; ++i) {
    h ^= i;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}

std::vector<OverheadResult> measure_overhead(const OverheadConfig& config) {
  PEN_CHECK(config.repetitions >= 1);
  PEN_CHECK(config.work_seconds > 0.0);

  const std::uint64_t units_per_second = calibrate_units_per_second();
  const auto& apps = workload::all_apps();

  // Scale per-app spin work by the app's profile length, normalised so
  // the mean run takes ~work_seconds.
  double mean_work = 0.0;
  std::vector<double> app_work;
  for (auto app : apps) {
    double w = workload::npb_profile(app).total_work_seconds();
    app_work.push_back(w);
    mean_work += w;
  }
  mean_work /= static_cast<double>(apps.size());

  std::vector<OverheadResult> results;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    double seconds = config.work_seconds * app_work[i] / mean_work;
    auto units = static_cast<std::uint64_t>(
        seconds * static_cast<double>(units_per_second));

    OverheadResult result;
    result.workload = workload::app_name(apps[i]);
    // Interleave baseline and with-Penelope repetitions so slow drift
    // in machine state (thermal, background load) cancels instead of
    // biasing one side — and alternate which of the two runs first in
    // each pair, so warm-up always helping the second measurement does
    // not masquerade as negative overhead. At the 1%-effect level this
    // matters more than the number of repetitions.
    std::vector<double> baseline_times;
    std::vector<double> penelope_times;
    for (int rep = 0; rep < config.repetitions; ++rep) {
      if (rep % 2 == 0) {
        baseline_times.push_back(time_spin(units));
        SingleNodePenelope penelope(config);
        penelope_times.push_back(time_spin(units));
      } else {
        {
          SingleNodePenelope penelope(config);
          penelope_times.push_back(time_spin(units));
        }
        baseline_times.push_back(time_spin(units));
      }
    }
    result.baseline_seconds = median_of(std::move(baseline_times));
    result.penelope_seconds = median_of(std::move(penelope_times));
    result.overhead_fraction =
        result.penelope_seconds / result.baseline_seconds - 1.0;
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace penelope::rt
