// Real-thread Penelope runtime: the same Decider / PowerPool protocol
// logic the simulator drives, here running under genuine concurrency —
// one decider thread and one pool-service thread per node, in-process
// mailboxes as the transport, wall-clock periods, and the SimulatedRapl
// model advanced in real time (swap in SysfsRapl on hardware that has
// it; examples/live_threads.cpp shows the fallback chain).
//
// This is deliberately a second, independent driver for core/: the
// discrete-event results stand on logic that demonstrably also runs
// correctly under preemption, lock contention, and real timeouts.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/decider.hpp"
#include "core/pool.hpp"
#include "core/txn_window.hpp"
#include "rt/mailbox.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/registry.hpp"

namespace penelope::rt {

/// Wall-clock microseconds since an arbitrary process-local epoch.
common::Ticks wall_ticks();

/// A scripted crash–restart for one node, in wall time relative to the
/// start of run_for. While down the node's pool drops incoming requests
/// (peers time out, exactly like probing a dead node) and its decider
/// idles; at `at + down_for` it restarts with a bumped incarnation,
/// volatile state (both TxnWindows, banked reply-box grants) wiped, and
/// its orphaned watts self-reclaimed into the pool.
struct ThreadCrashEvent {
  int node = 0;
  common::Ticks at = 0;
  common::Ticks down_for = common::from_millis(100);
};

struct ThreadClusterConfig {
  int n_nodes = 4;
  double initial_cap_watts = 120.0;
  double epsilon_watts = 5.0;
  /// Decider period (wall time). Shorter than the paper's 1 s so tests
  /// and examples converge in human time; the protocol is identical.
  common::Ticks period = common::from_millis(20);
  common::Ticks request_timeout = common::from_millis(20);
  core::PoolConfig pool;
  power::SafeRange safe_range{.min_watts = 40.0, .max_watts = 250.0};
  double idle_watts = 40.0;
  double rapl_tau_seconds = 0.02;  ///< scaled with the shortened period
  /// Transaction flight-recorder ring size; 0 disables the journal.
  std::size_t flight_recorder_capacity = 0;
  /// Crash–restart churn schedule; empty (default) disables churn.
  std::vector<ThreadCrashEvent> crash_events;
  std::uint64_t seed = 42;
};

/// One step of a node's scripted demand trajectory.
struct DemandPhase {
  double demand_watts = 0.0;
  common::Ticks duration = common::kTicksPerSecond;
};

struct ThreadNodeReport {
  int id = 0;
  double final_cap = 0.0;
  double final_pool = 0.0;
  core::DeciderStats decider;
  core::PoolStats pool;
  std::uint64_t grants_received = 0;
  std::uint64_t timeouts = 0;
  /// Redelivered messages refused by this node's TxnWindows (the mailbox
  /// transport never duplicates, but the protocol no longer assumes so).
  std::uint64_t duplicates_dropped = 0;
  /// Crash–restart churn bookkeeping.
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint32_t incarnation = 1;
  /// Watts seized by a crash and not yet self-reclaimed (nonzero only
  /// for a node still down when the run ended).
  double orphaned_watts = 0.0;
};

class ThreadCluster {
 public:
  /// `demand_scripts[i]` drives node i's power demand over wall time;
  /// the last phase persists once reached.
  ThreadCluster(ThreadClusterConfig config,
                std::vector<std::vector<DemandPhase>> demand_scripts);
  ~ThreadCluster();

  ThreadCluster(const ThreadCluster&) = delete;
  ThreadCluster& operator=(const ThreadCluster&) = delete;

  /// Launch all threads, run for `duration` wall time, stop, join.
  void run_for(common::Ticks duration);

  /// Reports are valid after run_for returned.
  std::vector<ThreadNodeReport> reports() const;

  /// Total live power (caps + pools + in-flight); for conservation
  /// checks after shutdown.
  double total_live_watts() const;
  /// Watts orphaned by crashes whose nodes never restarted; the
  /// conservation check under churn is
  /// total_live_watts() + orphaned_watts() == budget().
  double orphaned_watts() const;
  double budget() const;

  /// Aggregated view of the sharded per-node counters (grants applied,
  /// timeouts, duplicates dropped), exportable via
  /// telemetry::to_prometheus_text.
  std::vector<telemetry::MetricSample> metrics_snapshot() const {
    return registry_.snapshot();
  }
  telemetry::MetricsRegistry& registry() { return registry_; }
  const telemetry::FlightRecorder& flight_recorder() const {
    return recorder_;
  }

 private:
  struct Node;

  void decider_loop(Node& node, std::stop_token stop);
  void pool_loop(Node& node, std::stop_token stop);

  ThreadClusterConfig config_;
  // Registry precedes nodes: nodes cache handles into registry cells.
  telemetry::MetricsRegistry registry_{telemetry::Concurrency::kSharded};
  telemetry::FlightRecorder recorder_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<bool> running_{false};
};

}  // namespace penelope::rt
