#include "dst/schedule.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace penelope::dst {
namespace {

using cluster::FaultEvent;
using Kind = FaultEvent::Kind;

// --- exact decimal time <-> ticks -----------------------------------
//
// Ticks are integer microseconds; the text form is decimal seconds with
// up to six fractional digits. Both directions are pure integer
// arithmetic so format(parse(s)) == s (modulo trailing zeros) and
// parse(format(t)) == t — the repro string names the exact tick.

std::string format_ticks(common::Ticks t) {
  PEN_CHECK(t >= 0);
  const long long whole = t / common::kTicksPerSecond;
  const long long frac = t % common::kTicksPerSecond;
  char buf[40];
  if (frac == 0) {
    std::snprintf(buf, sizeof buf, "%lld", whole);
    return buf;
  }
  std::snprintf(buf, sizeof buf, "%lld.%06lld", whole, frac);
  std::string s(buf);
  while (s.back() == '0') s.pop_back();
  return s;
}

bool parse_ticks(const std::string& text, common::Ticks* out) {
  if (text.empty()) return false;
  long long whole = 0;
  std::size_t i = 0;
  if (text[i] < '0' || text[i] > '9') return false;
  for (; i < text.size() && text[i] >= '0' && text[i] <= '9'; ++i) {
    whole = whole * 10 + (text[i] - '0');
    if (whole > 1'000'000'000) return false;  // > ~31 sim-years
  }
  long long frac = 0;
  if (i < text.size()) {
    if (text[i] != '.') return false;
    ++i;
    int digits = 0;
    for (; i < text.size(); ++i, ++digits) {
      if (text[i] < '0' || text[i] > '9' || digits >= 6) return false;
      frac = frac * 10 + (text[i] - '0');
    }
    if (digits == 0) return false;
    for (; digits < 6; ++digits) frac *= 10;
  }
  *out = whole * common::kTicksPerSecond + frac;
  return true;
}

std::string format_rate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

const char* kind_token(Kind kind) {
  switch (kind) {
    case Kind::kKillServer: return "killsrv";
    case Kind::kKillManagement: return "killmgmt";
    case Kind::kPartition: return "part";
    case Kind::kHealPartition: return "heal";
    case Kind::kCrashNode: return "crash";
    case Kind::kRecoverNode: return "recover";
    case Kind::kAsymPartition: return "asym";
    case Kind::kHealAsymPartition: return "asymheal";
    case Kind::kPauseNode: return "pause";
    case Kind::kResumeNode: return "resume";
    case Kind::kLatencyBurst: return "burst";
    case Kind::kSetFaultRates: return "rates";
  }
  return "??";
}

void sort_canonical(std::vector<FaultEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.kind != b.kind)
                       return static_cast<int>(a.kind) <
                              static_cast<int>(b.kind);
                     return a.node < b.node;
                   });
}

}  // namespace

std::vector<FaultEvent> generate_schedule(const ScheduleSpec& spec,
                                          std::uint64_t salt) {
  PEN_CHECK(spec.n_nodes >= 2);
  PEN_CHECK(spec.horizon_s > 2.0);
  common::Rng rng(salt ^ 0x6a09e667f3bcc908ULL);
  std::vector<FaultEvent> events;

  // All instants are whole milliseconds: exact in text form, and two
  // independently drawn episodes rarely collide on a tick.
  const auto draw_at = [&](double lo_s, double hi_s) -> common::Ticks {
    const int lo = static_cast<int>(lo_s * 1000.0);
    const int hi = static_cast<int>(hi_s * 1000.0);
    return static_cast<common::Ticks>(rng.uniform_int(lo, hi)) *
           common::kTicksPerMillisecond;
  };
  const auto draw_node = [&] {
    return static_cast<net::NodeId>(
        rng.next_below(static_cast<std::uint32_t>(spec.n_nodes)));
  };

  // The stochastic-rate menu: short literals so text round-trips are
  // exact, small enough that runs stay mostly functional.
  static constexpr double kRateMenu[] = {0.0, 0.01, 0.02, 0.05, 0.1, 0.2};
  const auto draw_rate = [&] { return kRateMenu[rng.uniform_int(0, 5)]; };

  for (int e = 0; e < spec.episodes; ++e) {
    const common::Ticks at = draw_at(1.0, spec.horizon_s);
    const common::Ticks undo =
        at + draw_at(0.5, 8.0);  // episode length 0.5..8 s
    switch (rng.uniform_int(0, 6)) {
      case 0: {  // crash / recover pair
        if (!spec.allow_crash) break;
        const net::NodeId node = draw_node();
        events.push_back({Kind::kCrashNode, at, node});
        events.push_back({Kind::kRecoverNode, undo, node});
        break;
      }
      case 1: {  // two-way partition episode
        const int split = rng.uniform_int(1, spec.n_nodes - 1);
        events.push_back({Kind::kPartition, at, split});
        events.push_back({Kind::kHealPartition, undo, 0});
        break;
      }
      case 2: {  // one-way partition episode
        const int split = rng.uniform_int(1, spec.n_nodes - 1);
        events.push_back({Kind::kAsymPartition, at, split});
        events.push_back({Kind::kHealAsymPartition, undo, 0});
        break;
      }
      case 3: {  // pause / resume pair
        const net::NodeId node = draw_node();
        events.push_back({Kind::kPauseNode, at, node});
        events.push_back({Kind::kResumeNode, undo, node});
        break;
      }
      case 4: {  // latency burst, self-bounded by `until`
        FaultEvent ev{Kind::kLatencyBurst, at, draw_node()};
        ev.until = undo;
        // 20..2000 ms of extra one-way latency: spans "annoying" to
        // "well past the request timeout".
        ev.magnitude =
            static_cast<double>(rng.uniform_int(20, 2000)) / 1000.0;
        events.push_back(ev);
        break;
      }
      case 5: {  // stochastic-rates window, restored to zero at undo
        FaultEvent on{Kind::kSetFaultRates, at, 0};
        on.rates.loss = draw_rate();
        on.rates.duplicate = draw_rate();
        on.rates.reorder = draw_rate();
        on.rates.corrupt = draw_rate();
        FaultEvent off{Kind::kSetFaultRates, undo, 0};
        events.push_back(on);
        events.push_back(off);
        break;
      }
      case 6: {  // management-plane kill (permanently unclean)
        if (!spec.allow_kill_management) break;
        events.push_back({Kind::kKillManagement, at, draw_node()});
        break;
      }
    }
  }
  sort_canonical(events);
  return events;
}

std::string format_schedule(const std::vector<FaultEvent>& events) {
  std::string out;
  for (const FaultEvent& ev : events) {
    if (!out.empty()) out += '/';
    out += kind_token(ev.kind);
    out += '@';
    out += format_ticks(ev.at);
    switch (ev.kind) {
      case Kind::kKillServer:
      case Kind::kHealPartition:
      case Kind::kHealAsymPartition:
        break;
      case Kind::kKillManagement:
      case Kind::kPartition:
      case Kind::kAsymPartition:
      case Kind::kCrashNode:
      case Kind::kRecoverNode:
      case Kind::kPauseNode:
      case Kind::kResumeNode:
        out += ',' + std::to_string(ev.node);
        break;
      case Kind::kLatencyBurst: {
        char buf[32];
        std::snprintf(buf, sizeof buf, ",%d,%lld", ev.node,
                      static_cast<long long>(ev.magnitude * 1000.0 + 0.5));
        out += buf;
        out += ',' + format_ticks(ev.until);
        break;
      }
      case Kind::kSetFaultRates:
        out += ',' + format_rate(ev.rates.loss);
        out += ',' + format_rate(ev.rates.duplicate);
        out += ',' + format_rate(ev.rates.reorder);
        out += ',' + format_rate(ev.rates.corrupt);
        break;
    }
  }
  return out;
}

bool parse_schedule(const std::string& text,
                    std::vector<FaultEvent>* out, std::string* error) {
  PEN_CHECK(out != nullptr);
  const auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  std::vector<FaultEvent> events;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('/', pos);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) {
      if (text.empty()) break;  // empty schedule is legal
      return fail("empty event (stray '/')");
    }
    const std::size_t at_sep = token.find('@');
    if (at_sep == std::string::npos)
      return fail("missing '@' in \"" + token + "\"");
    const std::string name = token.substr(0, at_sep);

    std::vector<std::string> args;
    std::size_t a = at_sep + 1;
    while (a <= token.size()) {
      std::size_t c = token.find(',', a);
      if (c == std::string::npos) c = token.size();
      args.push_back(token.substr(a, c - a));
      a = c + 1;
    }
    if (args.empty() || args[0].empty())
      return fail("missing time in \"" + token + "\"");

    FaultEvent ev;
    if (!parse_ticks(args[0], &ev.at))
      return fail("bad time in \"" + token + "\"");
    const auto want_node = [&](std::size_t idx) {
      if (idx >= args.size() || args[idx].empty()) return false;
      char* rest = nullptr;
      long v = std::strtol(args[idx].c_str(), &rest, 10);
      if (rest == nullptr || *rest != '\0' || v < 0 || v > 1'000'000)
        return false;
      ev.node = static_cast<net::NodeId>(v);
      return true;
    };
    const auto want_rate = [&](std::size_t idx, double* slot) {
      if (idx >= args.size() || args[idx].empty()) return false;
      char* rest = nullptr;
      double v = std::strtod(args[idx].c_str(), &rest);
      if (rest == nullptr || *rest != '\0' || v < 0.0 || v > 1.0)
        return false;
      *slot = v;
      return true;
    };

    std::size_t want_args = 1;
    if (name == "killsrv") {
      ev.kind = Kind::kKillServer;
    } else if (name == "heal") {
      ev.kind = Kind::kHealPartition;
    } else if (name == "asymheal") {
      ev.kind = Kind::kHealAsymPartition;
    } else if (name == "killmgmt" || name == "part" || name == "asym" ||
               name == "crash" || name == "recover" || name == "pause" ||
               name == "resume") {
      want_args = 2;
      if (!want_node(1)) return fail("bad node in \"" + token + "\"");
      ev.kind = name == "killmgmt" ? Kind::kKillManagement
                : name == "part"   ? Kind::kPartition
                : name == "asym"   ? Kind::kAsymPartition
                : name == "crash"  ? Kind::kCrashNode
                : name == "recover" ? Kind::kRecoverNode
                : name == "pause"  ? Kind::kPauseNode
                                   : Kind::kResumeNode;
    } else if (name == "burst") {
      want_args = 4;
      ev.kind = Kind::kLatencyBurst;
      if (!want_node(1)) return fail("bad node in \"" + token + "\"");
      char* rest = nullptr;
      if (args.size() < 4)
        return fail("burst needs at,node,extra_ms,until");
      long extra_ms = std::strtol(args[2].c_str(), &rest, 10);
      if (rest == nullptr || *rest != '\0' || extra_ms <= 0)
        return fail("bad extra_ms in \"" + token + "\"");
      ev.magnitude = static_cast<double>(extra_ms) / 1000.0;
      if (!parse_ticks(args[3], &ev.until))
        return fail("bad until in \"" + token + "\"");
    } else if (name == "rates") {
      want_args = 5;
      ev.kind = Kind::kSetFaultRates;
      if (!want_rate(1, &ev.rates.loss) ||
          !want_rate(2, &ev.rates.duplicate) ||
          !want_rate(3, &ev.rates.reorder) ||
          !want_rate(4, &ev.rates.corrupt))
        return fail("bad rates in \"" + token + "\"");
    } else {
      return fail("unknown fault kind \"" + name + "\"");
    }
    if (args.size() != want_args)
      return fail("wrong arg count in \"" + token + "\"");
    events.push_back(ev);
    if (pos > text.size()) break;
  }
  sort_canonical(events);
  *out = std::move(events);
  return true;
}

bool schedule_is_clean(const std::vector<FaultEvent>& events) {
  // Canonical order is by time, so a single forward pass tracks the
  // live fault set.
  std::vector<net::NodeId> crashed;
  std::vector<net::NodeId> paused;
  bool partitioned = false;
  bool asym = false;
  bool rates_on = false;
  for (const FaultEvent& ev : events) {
    switch (ev.kind) {
      case Kind::kKillServer:
      case Kind::kKillManagement:
        return false;  // nothing ever undoes a kill
      case Kind::kPartition: partitioned = true; break;
      case Kind::kHealPartition: partitioned = false; break;
      case Kind::kAsymPartition: asym = true; break;
      case Kind::kHealAsymPartition: asym = false; break;
      case Kind::kCrashNode: crashed.push_back(ev.node); break;
      case Kind::kRecoverNode:
        std::erase(crashed, ev.node);
        break;
      case Kind::kPauseNode: paused.push_back(ev.node); break;
      case Kind::kResumeNode:
        std::erase(paused, ev.node);
        break;
      case Kind::kLatencyBurst: break;  // self-bounded by `until`
      case Kind::kSetFaultRates:
        rates_on = ev.rates.loss > 0.0 || ev.rates.duplicate > 0.0 ||
                   ev.rates.reorder > 0.0 || ev.rates.corrupt > 0.0;
        break;
    }
  }
  return !partitioned && !asym && !rates_on && crashed.empty() &&
         paused.empty();
}

}  // namespace penelope::dst
