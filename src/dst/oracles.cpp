#include "dst/oracles.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "cluster/metrics.hpp"

namespace penelope::dst {
namespace {

std::string fmt(const char* pattern, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof buf, pattern, a, b);
  return buf;
}

}  // namespace

bool has_oracle(const std::vector<Violation>& violations,
                const std::string& oracle) {
  return std::any_of(
      violations.begin(), violations.end(),
      [&](const Violation& v) { return v.oracle == oracle; });
}

std::vector<Violation> check_oracles(const OracleFacts& facts) {
  std::vector<Violation> out;

  // Conservation: watts are never minted or silently destroyed. The
  // audit already nets out declared retirement debt, so any residual is
  // a real leak/mint. This is also the oracle that catches "live watts
  // reclaimed": a reclaim of a living node's share puts the same watts
  // in two places at once, and the ledger sum walks away from budget.
  if (facts.audit.max_abs_conservation_error > facts.tolerance_watts) {
    out.push_back({"conservation",
                   fmt("max |conservation error| %.6g W exceeds %.2g W",
                       facts.audit.max_abs_conservation_error,
                       facts.tolerance_watts)});
  }

  // Cap safety: live (spendable) watts never exceed budget + declared
  // transitional debt.
  if (facts.audit.max_live_overshoot > facts.tolerance_watts) {
    out.push_back({"cap-overshoot",
                   fmt("live watts overshot budget by %.6g W (> %.2g W)",
                       facts.audit.max_live_overshoot,
                       facts.tolerance_watts)});
  }

  // Transaction at-most-once: a grant settles once. Settlement events
  // are kGrantReceived (matched while outstanding) and kLateGrant
  // (banked after timeout); the hardened dedup window guarantees at
  // most one of either per txn, so two settlements — in the *retained*
  // journal, wrapped ring or not — mean a double-apply.
  {
    std::unordered_map<std::uint64_t, int> settlements;
    std::uint64_t worst_txn = 0;
    int worst = 1;
    for (const telemetry::TxnRecord& rec : facts.journal) {
      if (rec.kind != telemetry::TxnEventKind::kGrantReceived &&
          rec.kind != telemetry::TxnEventKind::kLateGrant)
        continue;
      int n = ++settlements[rec.txn_id];
      if (n > worst) {
        worst = n;
        worst_txn = rec.txn_id;
      }
    }
    if (worst > 1) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "txn %llu settled %d times (grant applied/banked "
                    "more than once)",
                    static_cast<unsigned long long>(worst_txn), worst);
      out.push_back({"at-most-once", buf});
    }
  }

  // Membership safety: incarnations move monotonically and only via
  // restarts the schedule actually performed. A node reporting a higher
  // incarnation than its recover count re-admitted itself through a
  // path that never existed.
  if (!facts.churny &&
      facts.incarnations.size() == facts.allowed_restarts.size()) {
    for (std::size_t i = 0; i < facts.incarnations.size(); ++i) {
      const std::uint32_t inc = facts.incarnations[i];
      if (inc < 1 || inc > 1 + facts.allowed_restarts[i]) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "node %zu incarnation %u outside [1, %u]", i, inc,
                      1 + facts.allowed_restarts[i]);
        out.push_back({"incarnation", buf});
        break;
      }
    }
  }

  // Liveness: the watchdog's verdict is authoritative for wedges; the
  // completion/re-convergence checks arm only on clean schedules where
  // full recovery is actually owed.
  if (facts.wedged) {
    out.push_back(
        {"liveness-wedged",
         "watchdog: no decider progress with live incomplete nodes"});
  } else if (facts.clean_schedule && !facts.all_completed) {
    out.push_back({"liveness-incomplete",
                   "all faults healed but some node never finished"});
  }
  if (facts.clean_schedule && !facts.reconverged) {
    out.push_back({"liveness-no-reconvergence",
                   "fairness never re-converged after the last fault"});
  }
  return out;
}

OracleFacts gather_facts(const cluster::Cluster& cl,
                         const cluster::RunResult& result,
                         const std::vector<cluster::FaultEvent>& schedule) {
  OracleFacts facts;
  facts.audit = result.audit;
  facts.journal = cl.metrics().recorder().snapshot();
  facts.journal_complete = cl.metrics().recorder().dropped() == 0;
  facts.churny = cl.config().churn_enabled;
  facts.wedged = result.wedged;
  facts.all_completed = result.all_completed;
  facts.clean_schedule = schedule_is_clean(schedule);

  const int n = cl.config().n_nodes;
  facts.incarnations.reserve(static_cast<std::size_t>(n));
  facts.allowed_restarts.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i)
    facts.incarnations.push_back(cl.node_incarnation(i));
  common::Ticks last_fault_at = 0;
  for (const cluster::FaultEvent& ev : schedule) {
    last_fault_at = std::max(last_fault_at, ev.at);
    if (ev.kind == cluster::FaultEvent::Kind::kRecoverNode &&
        ev.node >= 0 && ev.node < n)
      ++facts.allowed_restarts[static_cast<std::size_t>(ev.node)];
  }

  // Re-convergence, judged only when it is judgeable: clean schedule,
  // health probes on, and the run outlived the last fault by enough
  // probes that "never recovered" is a statement, not a cutoff.
  facts.reconverged = true;
  const auto& probes = cl.health().probes();
  if (facts.clean_schedule && !schedule.empty() && !probes.empty()) {
    const common::Ticks slack = 5 * common::kTicksPerSecond;
    if (probes.back().at >= last_fault_at + slack) {
      facts.reconverged =
          cl.health().convergence_seconds(last_fault_at).has_value();
    }
  }
  return facts;
}

}  // namespace penelope::dst
