// Fault schedules for the deterministic fault-schedule explorer (DST).
//
// A schedule is an ordered list of cluster::FaultEvent with a compact,
// shell-safe text form so any explorer finding can be replayed from a
// one-line `run_experiment` command. The grammar is `/`-separated
// events, each `<kind>@<t>[,args...]`:
//
//   killsrv@T            kill the central server at T seconds
//   killmgmt@T,N         kill node N's management plane
//   part@T,S             two-way partition, split point S
//   heal@T               heal the two-way partition
//   asym@T,S             one-way partition: [0,S) -> [S,n)+server drops
//   asymheal@T           heal the one-way block
//   crash@T,N            crash node N (volatile state lost)
//   recover@T,N          restart node N (incarnation bump)
//   pause@T,N            NIC-level stall: frames queue, state survives
//   resume@T,N           release the stall, replay queued frames
//   burst@T,N,E,U        node N's sends gain E ms latency until U seconds
//   rates@T,L,D,R,C      stochastic loss/dup/reorder/corrupt knobs
//
// Times are written as decimal seconds and parsed *exactly* (decimal
// micro-ticks, no floating-point round trip), so format -> parse ->
// format is the identity and a repro string names the same tick the
// generator drew.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace penelope::dst {

/// Knobs for the random schedule generator. Every draw comes from one
/// Rng seeded by the salt alone, so a (spec, salt) pair names exactly
/// one schedule forever.
struct ScheduleSpec {
  int n_nodes = 8;
  /// Faults land in [1, horizon_s); paired undo events may land a
  /// little past it (bounded by the episode length draw).
  double horizon_s = 40.0;
  /// Episodes to draw; most emit an (inject, undo) pair of events.
  int episodes = 4;
  /// Include management-plane kills (permanently unclean schedules:
  /// the re-convergence oracle is skipped for them).
  bool allow_kill_management = true;
  /// Include whole-node crash/recover episodes.
  bool allow_crash = true;
};

/// Draw a schedule from the salt. Deterministic; sorted by (at, kind,
/// node) so subsets taken by the shrinker stay canonically ordered.
std::vector<cluster::FaultEvent> generate_schedule(
    const ScheduleSpec& spec, std::uint64_t salt);

std::string format_schedule(
    const std::vector<cluster::FaultEvent>& events);

/// Inverse of format_schedule. Returns false and fills `error` (if
/// non-null) on malformed input; `out` is left untouched on failure.
bool parse_schedule(const std::string& text,
                    std::vector<cluster::FaultEvent>* out,
                    std::string* error = nullptr);

/// True when every injected fault is undone within the schedule: every
/// crash recovered, every partition/one-way block healed, every pause
/// resumed, and the last rates event (if any) restores all-zero rates.
/// Kill events are never clean. Only clean schedules arm the eventual
/// re-convergence oracle — an unhealed fault is *allowed* to leave the
/// cluster degraded.
bool schedule_is_clean(const std::vector<cluster::FaultEvent>& events);

}  // namespace penelope::dst
