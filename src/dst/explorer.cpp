#include "dst/explorer.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"
#include "sweep/parallel.hpp"

namespace penelope::dst {
namespace {

// splitmix64 finalizer: cheap, well-mixed fold for outcome hashing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

workload::NpbConfig dst_npb(const ExplorerConfig& cfg,
                            std::uint64_t seed) {
  workload::NpbConfig npb;
  npb.duration_scale = cfg.duration_scale;
  npb.demand_jitter_frac = 0.03;
  npb.seed = seed;
  return npb;
}

}  // namespace

cluster::ClusterConfig make_dst_config(const ExplorerConfig& cfg,
                                       std::uint64_t seed) {
  cluster::ClusterConfig cc;
  cc.manager = cluster::ManagerKind::kPenelope;
  cc.n_nodes = cfg.n_nodes;
  cc.per_socket_cap_watts = 70.0;
  cc.seed = seed;
  cc.max_seconds = cfg.max_seconds;
  // Every discovery refinement on: more protocol paths per run means
  // more surface the oracles actually watch.
  cc.sticky_peers = true;
  cc.hint_discovery = true;
  cc.blacklist_after_timeouts = 3;
  cc.push_gossip = true;
  // Membership + reclaim: the incarnation oracle needs the epoch-guard
  // machinery live.
  cc.membership_enabled = true;
  // Dense audits so a one-tick mint cannot hide between samples, and
  // the watchdog gets a fine-grained progress clock.
  cc.audit_interval = common::from_seconds(0.5);
  cc.watchdog_s = cfg.watchdog_s;
  cc.watchdog_abort = false;  // a wedge is an oracle verdict, not a crash
  cc.flight_recorder_capacity = 16384;
  cc.series_interval = common::from_seconds(1.0);
  cc.test_revert_grant_fix = cfg.plant_bug;
  return cc;
}

std::uint64_t schedule_salt(const ExplorerConfig& cfg, int variant) {
  return mix64(cfg.base_seed ^
               (0xa0761d6478bd642fULL + static_cast<std::uint64_t>(variant)));
}

RunOutcome execute_one(const ExplorerConfig& cfg, std::uint64_t seed,
                       std::uint64_t salt,
                       const std::vector<cluster::FaultEvent>& schedule) {
  cluster::ClusterConfig cc = make_dst_config(cfg, seed);
  cc.faults = schedule;
  cluster::Cluster cl(
      cc, cluster::make_pair_workloads(workload::NpbApp::kEP,
                                       workload::NpbApp::kDC, cc.n_nodes,
                                       dst_npb(cfg, seed)));
  cluster::RunResult result = cl.run();

  RunOutcome out;
  out.seed = seed;
  out.schedule_salt = salt;
  out.schedule = format_schedule(schedule);
  out.trace_hash = cl.trace_hash();
  out.executed_events = cl.executed_events();
  out.completed = result.all_completed;
  out.violations = check_oracles(gather_facts(cl, result, schedule));
  return out;
}

SwarmReport run_swarm(const ExplorerConfig& cfg) {
  PEN_CHECK(cfg.seeds >= 1 && cfg.schedules >= 1);
  ScheduleSpec spec = cfg.spec;
  spec.n_nodes = cfg.n_nodes;

  const std::size_t pairs = static_cast<std::size_t>(cfg.seeds) *
                            static_cast<std::size_t>(cfg.schedules);
  std::vector<RunOutcome> outcomes = sweep::parallel_map(
      pairs, cfg.jobs, [&](std::size_t i) {
        const std::uint64_t seed =
            cfg.base_seed +
            static_cast<std::uint64_t>(
                i / static_cast<std::size_t>(cfg.schedules));
        const std::uint64_t salt = schedule_salt(
            cfg, static_cast<int>(
                     i % static_cast<std::size_t>(cfg.schedules)));
        return execute_one(cfg, seed, salt,
                           generate_schedule(spec, salt));
      });

  SwarmReport report;
  report.runs = outcomes.size();
  for (const RunOutcome& out : outcomes) {
    report.outcome_hash =
        mix64(report.outcome_hash ^ out.trace_hash ^
              mix64(out.violations.size()));
    if (!out.violations.empty()) {
      ++report.violating_runs;
      report.violations.push_back(out);
    }
  }
  return report;
}

std::vector<cluster::FaultEvent> shrink_schedule(
    const ExplorerConfig& cfg, std::uint64_t seed,
    const std::vector<cluster::FaultEvent>& schedule,
    const std::string& oracle, std::size_t* executions) {
  std::size_t spent = 0;
  const auto still_fails =
      [&](const std::vector<cluster::FaultEvent>& subset) {
        if (spent >= cfg.shrink_budget) return false;
        ++spent;
        return has_oracle(
            execute_one(cfg, seed, /*salt=*/0, subset).violations,
            oracle);
      };

  // Classic ddmin over the event list. Subsets keep the canonical
  // order, so a subset's text form is itself a valid, sorted schedule.
  std::vector<cluster::FaultEvent> current = schedule;
  std::size_t granularity = 2;
  while (current.size() >= 2) {
    const std::size_t chunk =
        (current.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < current.size(); start += chunk) {
      std::vector<cluster::FaultEvent> complement;
      complement.reserve(current.size());
      for (std::size_t i = 0; i < current.size(); ++i) {
        if (i < start || i >= start + chunk) complement.push_back(current[i]);
      }
      if (complement.size() < current.size() && still_fails(complement)) {
        current = std::move(complement);
        granularity = std::max<std::size_t>(granularity - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= current.size()) break;
      granularity = std::min(current.size(), granularity * 2);
    }
    if (spent >= cfg.shrink_budget) break;
  }
  if (executions) *executions = spent;
  return current;
}

std::string repro_command(const ExplorerConfig& cfg, std::uint64_t seed,
                          const std::vector<cluster::FaultEvent>& schedule) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "run_experiment dst=1 nodes=%d seed=%llu "
                "duration_scale=%g watchdog_s=%g%s schedule='",
                cfg.n_nodes, static_cast<unsigned long long>(seed),
                cfg.duration_scale, cfg.watchdog_s,
                cfg.plant_bug ? " dst_bug=1" : "");
  return std::string(buf) + format_schedule(schedule) + "'";
}

}  // namespace penelope::dst
