// The fault-schedule explorer: a swarm of deterministic simulations
// over (seed, schedule) pairs, invariant oracles over every finished
// run, and ddmin shrinking of any violating schedule down to a minimal
// fault-event repro.
//
// Everything here is a pure function of its inputs: the same
// (ExplorerConfig, seed, schedule) triple produces byte-identical runs
// (same trace hash, same oracle verdicts) at any worker count, which is
// what makes "replay the counterexample" a one-line command rather than
// an aspiration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "dst/oracles.hpp"
#include "dst/schedule.hpp"

namespace penelope::dst {

struct ExplorerConfig {
  int n_nodes = 8;
  std::uint64_t base_seed = 1;
  /// Swarm shape: `seeds` x `schedules` pairs. Seed k runs every
  /// schedule variant, so one workload/jitter draw meets many fault
  /// interleavings and vice versa.
  int seeds = 32;
  int schedules = 32;
  /// Worker threads for the swarm (0 = one per hardware thread).
  int jobs = 0;
  /// Workload scale: DST runs shrink the NPB apps so thousands of runs
  /// stay cheap. 0.3 puts the unfaulted runtime near 55 sim-seconds —
  /// past the default schedule horizon, so every fault meets live
  /// traffic.
  double duration_scale = 0.3;
  double max_seconds = 300.0;
  double watchdog_s = 30.0;
  ScheduleSpec spec;
  /// Plant the known bug (ClusterConfig::test_revert_grant_fix) — the
  /// explorer's own acceptance test: the swarm must find it and shrink
  /// it to a handful of fault events.
  bool plant_bug = false;
  /// Hard cap on run executions a single shrink may spend.
  std::size_t shrink_budget = 512;
};

/// One swarm run's verdict.
struct RunOutcome {
  std::uint64_t seed = 0;
  std::uint64_t schedule_salt = 0;
  std::string schedule;
  std::uint64_t trace_hash = 0;
  std::uint64_t executed_events = 0;
  bool completed = false;
  std::vector<Violation> violations;
};

struct SwarmReport {
  std::size_t runs = 0;
  std::size_t violating_runs = 0;
  /// Index-ordered fold of every run's (trace_hash, verdicts): two
  /// swarms over the same config are byte-identical iff these match,
  /// at any jobs= value.
  std::uint64_t outcome_hash = 0;
  /// Only the violating runs, in pair-index order.
  std::vector<RunOutcome> violations;
};

/// The cluster configuration a DST run uses: classic Penelope manager
/// with every discovery refinement on, membership + reclaim on, flight
/// recorder and health series on, watchdog armed (stop, not abort).
cluster::ClusterConfig make_dst_config(const ExplorerConfig& cfg,
                                       std::uint64_t seed);

/// Deterministically derive the salt for schedule variant `v`.
std::uint64_t schedule_salt(const ExplorerConfig& cfg, int variant);

/// Run one (seed, schedule) pair to completion and judge it.
RunOutcome execute_one(const ExplorerConfig& cfg, std::uint64_t seed,
                       std::uint64_t salt,
                       const std::vector<cluster::FaultEvent>& schedule);

/// The swarm: seeds x schedules runs via sweep::parallel_map.
SwarmReport run_swarm(const ExplorerConfig& cfg);

/// ddmin over fault events: the smallest subset of `schedule` (kept in
/// canonical order) whose run still violates `oracle` for this seed.
/// Deterministic: same inputs, same minimal schedule. `executions`, if
/// non-null, receives the number of runs spent.
std::vector<cluster::FaultEvent> shrink_schedule(
    const ExplorerConfig& cfg, std::uint64_t seed,
    const std::vector<cluster::FaultEvent>& schedule,
    const std::string& oracle, std::size_t* executions = nullptr);

/// One-line `run_experiment` invocation that replays this exact run.
std::string repro_command(const ExplorerConfig& cfg, std::uint64_t seed,
                          const std::vector<cluster::FaultEvent>& schedule);

}  // namespace penelope::dst
