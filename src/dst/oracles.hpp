// Invariant oracles for the deterministic fault-schedule explorer.
//
// Each oracle is a pure predicate over OracleFacts — a plain struct of
// everything a finished run can testify about itself. Keeping the facts
// forgeable (no Cluster reference inside check_oracles) lets the unit
// suite hand-build violating histories for every oracle without having
// to reproduce the corresponding bug in live code.
//
// Subset-robustness matters: the shrinker re-checks oracles on runs
// driven by arbitrary *subsets* of the original schedule, so every
// oracle must stay meaningful when fault events disappear. That is why
// the liveness/re-convergence oracles arm only on *clean* schedules
// (see schedule_is_clean) and the incarnation bound is computed from
// the schedule actually run, not the one originally drawn.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/invariants.hpp"
#include "dst/schedule.hpp"
#include "telemetry/flight_recorder.hpp"

namespace penelope::dst {

struct OracleFacts {
  /// Conservation / cap-safety, straight from the periodic audit.
  cluster::AuditSummary audit;
  double tolerance_watts = 1e-6;

  /// Transaction journal (flight recorder snapshot). `journal_complete`
  /// is false when the ring wrapped; the at-most-once oracle still
  /// checks what was retained (double-settlement within the window is
  /// a violation regardless of what scrolled off).
  std::vector<telemetry::TxnRecord> journal;
  bool journal_complete = true;

  /// Final incarnation per node, and how many recover events the
  /// schedule actually ran per node. With churn the bound is void.
  std::vector<std::uint32_t> incarnations;
  std::vector<std::uint32_t> allowed_restarts;
  bool churny = false;

  /// Liveness.
  bool wedged = false;
  bool all_completed = false;
  bool clean_schedule = false;
  /// Health-monitor verdict: did fairness re-converge after the last
  /// fault? Only meaningful (and only checked) when the run outlived
  /// the last fault by enough probes; gatherers leave it true when the
  /// question is unanswerable.
  bool reconverged = true;
};

struct Violation {
  /// Stable oracle id: "conservation", "cap-overshoot",
  /// "at-most-once", "incarnation", "liveness-wedged",
  /// "liveness-incomplete", "liveness-no-reconvergence".
  std::string oracle;
  std::string detail;
};

/// Run every oracle; returns one Violation per failed oracle (an oracle
/// reports at most once per run, with the worst instance in `detail`).
std::vector<Violation> check_oracles(const OracleFacts& facts);

/// Collect facts from a finished run. `schedule` must be the fault list
/// the run was actually configured with (the shrinker passes subsets).
OracleFacts gather_facts(const cluster::Cluster& cl,
                         const cluster::RunResult& result,
                         const std::vector<cluster::FaultEvent>& schedule);

bool has_oracle(const std::vector<Violation>& violations,
                const std::string& oracle);

}  // namespace penelope::dst
