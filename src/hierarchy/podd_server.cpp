#include "hierarchy/podd_server.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"

namespace penelope::hierarchy {

PoddServerLogic::PoddServerLogic(PoddConfig config)
    : config_(config),
      report_sums_(static_cast<std::size_t>(config.n_nodes), 0.0),
      report_counts_(static_cast<std::size_t>(config.n_nodes), 0),
      excluded_(static_cast<std::size_t>(config.n_nodes), false),
      central_(config.central) {
  PEN_CHECK(config_.n_nodes >= 2);
  PEN_CHECK(config_.profile_periods >= 1);
  PEN_CHECK(config_.safe_range.contains(config_.initial_cap_watts));
}

bool PoddServerLogic::handle_profile_report(int node,
                                            const ProfileReport& report) {
  if (profiling_complete_) return false;
  PEN_CHECK(node >= 0 && node < config_.n_nodes);
  auto idx = static_cast<std::size_t>(node);
  if (excluded_[idx]) {
    // A previously-expired node is reporting again (rejoined before the
    // window closed): readmit it with a clean accumulator. Its count is
    // already zero from expiry.
    excluded_[idx] = false;
  }
  if (report_counts_[idx] < config_.profile_periods) {
    report_sums_[idx] += std::max(report.avg_power_watts, 0.0);
    ++report_counts_[idx];
  }
  if (!all_participants_reported()) return true;
  finalize();
  return false;
}

bool PoddServerLogic::expire_reports(int node) {
  if (profiling_complete_) return false;
  PEN_CHECK(node >= 0 && node < config_.n_nodes);
  auto idx = static_cast<std::size_t>(node);
  if (!excluded_[idx]) {
    PEN_LOG_INFO(
        "podd: expiring %d profile report(s) from node %d (dead or "
        "epoch bump mid-window)",
        report_counts_[idx], node);
  }
  report_sums_[idx] = 0.0;
  report_counts_[idx] = 0;
  excluded_[idx] = true;
  if (!all_participants_reported()) return false;
  finalize();
  return true;
}

bool PoddServerLogic::all_participants_reported() const {
  int included = 0;
  for (int i = 0; i < config_.n_nodes; ++i) {
    auto idx = static_cast<std::size_t>(i);
    if (excluded_[idx]) continue;
    ++included;
    if (report_counts_[idx] < config_.profile_periods) return false;
  }
  // With every node expired there is nobody to learn from (or assign
  // to); hold the window open for rejoins instead of finalizing on
  // zero data.
  return included > 0;
}

double PoddServerLogic::group_a_demand() const {
  int half = config_.n_nodes / 2;
  double sum = 0.0;
  int count = 0;
  for (int i = 0; i < half; ++i) {
    auto idx = static_cast<std::size_t>(i);
    if (report_counts_[idx] > 0) {
      sum += report_sums_[idx] / report_counts_[idx];
      ++count;
    }
  }
  return count ? sum / count : 0.0;
}

double PoddServerLogic::group_b_demand() const {
  int half = config_.n_nodes / 2;
  double sum = 0.0;
  int count = 0;
  for (int i = half; i < config_.n_nodes; ++i) {
    auto idx = static_cast<std::size_t>(i);
    if (report_counts_[idx] > 0) {
      sum += report_sums_[idx] / report_counts_[idx];
      ++count;
    }
  }
  return count ? sum / count : 0.0;
}

GroupAssignment PoddServerLogic::split_budget(
    double total_budget, int na, int nb, double da, double db,
    const power::SafeRange& range) {
  PEN_CHECK(na > 0 && nb > 0);
  GroupAssignment out;
  double demand_total = na * da + nb * db;
  if (demand_total <= 0.0) {
    out.group_a_cap = out.group_b_cap =
        range.clamp(total_budget / (na + nb));
    return out;
  }
  // Demand-proportional split, then water-fill against the safe range:
  // a clamped group's surplus (or deficit) is absorbed by the other
  // group, which is then clamped too. Two passes settle two groups.
  double ca = total_budget * da / demand_total;
  double cb = total_budget * db / demand_total;
  for (int pass = 0; pass < 2; ++pass) {
    double ca_clamped = range.clamp(ca);
    double cb_clamped = range.clamp(cb);
    double spare = (ca - ca_clamped) * na + (cb - cb_clamped) * nb;
    ca = ca_clamped;
    cb = cb_clamped;
    if (spare > 0.0) {
      // One group couldn't use its share: offer it to the other.
      if (ca < range.max_watts) {
        ca = range.clamp(ca + spare / na);
      } else if (cb < range.max_watts) {
        cb = range.clamp(cb + spare / nb);
      }
      // If both are at max, the budget is simply underused — legal
      // (Delta > 0 in the paper's §2.2.2 terms).
    } else if (spare < 0.0) {
      // Clamping *raised* a group above its proportional share (min
      // clamp); the other group pays for it.
      if (cb > range.min_watts) {
        cb = range.clamp(cb + spare / nb);
      } else if (ca > range.min_watts) {
        ca = range.clamp(ca + spare / na);
      }
    }
  }
  // Never exceed the budget after clamping interplay: shave the larger
  // group if rounding pushed the total over.
  double total = ca * na + cb * nb;
  if (total > total_budget) {
    double excess = total - total_budget;
    if (ca >= cb) {
      ca = std::max(range.min_watts, ca - excess / na);
    } else {
      cb = std::max(range.min_watts, cb - excess / nb);
    }
  }
  out.group_a_cap = ca;
  out.group_b_cap = cb;
  return out;
}

void PoddServerLogic::finalize() {
  profiling_complete_ = true;
  int half = config_.n_nodes / 2;
  double budget = config_.initial_cap_watts * config_.n_nodes;
  assignment_ =
      split_budget(budget, half, config_.n_nodes - half,
                   group_a_demand(), group_b_demand(),
                   config_.safe_range);
  PEN_LOG_INFO(
      "podd: profiling done, demands A=%.1fW B=%.1fW -> caps A=%.1fW "
      "B=%.1fW",
      group_a_demand(), group_b_demand(), assignment_.group_a_cap,
      assignment_.group_b_cap);
}

double PoddServerLogic::assigned_cap(int node) const {
  PEN_CHECK(profiling_complete_);
  return node < config_.n_nodes / 2 ? assignment_.group_a_cap
                                    : assignment_.group_b_cap;
}

}  // namespace penelope::hierarchy
