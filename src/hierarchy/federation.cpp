#include "hierarchy/federation.hpp"

#include "common/check.hpp"

namespace penelope::hierarchy {

FederationTopology FederationTopology::build(int n_nodes, int pools,
                                             int fanout) {
  PEN_CHECK(n_nodes > 0);
  if (pools < 1) pools = 1;
  if (pools > n_nodes) pools = n_nodes;
  if (fanout < 2) fanout = 2;

  FederationTopology topo;
  topo.n_nodes = n_nodes;
  topo.n_leaves = pools;

  topo.leaf_of_node.resize(static_cast<std::size_t>(n_nodes));
  for (int i = 0; i < n_nodes; ++i) {
    topo.leaf_of_node[static_cast<std::size_t>(i)] = static_cast<int>(
        static_cast<std::int64_t>(i) * pools / n_nodes);
  }

  topo.leaf_first_node.assign(static_cast<std::size_t>(pools), n_nodes);
  topo.leaf_last_node.assign(static_cast<std::size_t>(pools), 0);
  for (int i = 0; i < n_nodes; ++i) {
    auto leaf = static_cast<std::size_t>(topo.leaf_of_node[
        static_cast<std::size_t>(i)]);
    if (i < topo.leaf_first_node[leaf]) topo.leaf_first_node[leaf] = i;
    if (i + 1 > topo.leaf_last_node[leaf]) topo.leaf_last_node[leaf] = i + 1;
  }
  // Balanced contiguous assignment never leaves a leaf empty.
  for (int p = 0; p < pools; ++p)
    PEN_CHECK(topo.leaf_first_node[static_cast<std::size_t>(p)] <
              topo.leaf_last_node[static_cast<std::size_t>(p)]);

  // Build levels bottom-up: a level of S pools gets ceil(S / fanout)
  // parents in the next level, child j reporting to parent j / fanout.
  int level_base = 0;
  int level_size = pools;
  topo.levels = 1;
  topo.parent.assign(static_cast<std::size_t>(pools), -1);
  while (level_size > 1) {
    int next_size = (level_size + fanout - 1) / fanout;
    int next_base = level_base + level_size;
    topo.parent.resize(static_cast<std::size_t>(next_base + next_size), -1);
    for (int j = 0; j < level_size; ++j) {
      topo.parent[static_cast<std::size_t>(level_base + j)] =
          next_base + j / fanout;
    }
    level_base = next_base;
    level_size = next_size;
    ++topo.levels;
  }
  topo.total_pools = level_base + level_size;

  topo.children.assign(static_cast<std::size_t>(topo.total_pools), {});
  for (int p = 0; p < topo.total_pools; ++p) {
    int up = topo.parent[static_cast<std::size_t>(p)];
    if (up >= 0) topo.children[static_cast<std::size_t>(up)].push_back(p);
  }

  topo.representative_node.assign(
      static_cast<std::size_t>(topo.total_pools), 0);
  for (int p = 0; p < pools; ++p) {
    topo.representative_node[static_cast<std::size_t>(p)] =
        topo.leaf_first_node[static_cast<std::size_t>(p)];
  }
  // Inner levels inherit their first child's representative; children
  // were appended in ascending pool order, so [0] is the leftmost.
  for (int p = pools; p < topo.total_pools; ++p) {
    const auto& kids = topo.children[static_cast<std::size_t>(p)];
    PEN_CHECK(!kids.empty());
    topo.representative_node[static_cast<std::size_t>(p)] =
        topo.representative_node[static_cast<std::size_t>(kids[0])];
  }
  return topo;
}

}  // namespace penelope::hierarchy
