// PoDD-style hierarchical power management (§2.3.3 and Zhang &
// Hoffmann [51]): for *coupled workloads* — two applications running
// simultaneously on the two halves of the cluster, where the pair is
// only as fast as its slower member — it pays to assign the halves
// different initial caps so they finish together, rather than split the
// budget evenly and shift reactively.
//
// PoDD "runs each application in the couple for a few iterations,
// learns the optimal initial node-level powercaps, and assigns these —
// a centralized process. It then launches a centralized power
// management system to coordinate node-level power shifting similarly
// to SLURM."
//
// This implementation mirrors that two-level structure:
//   1. Profiling window: every client reports its per-period average
//      power; the server keeps a running mean per node.
//   2. Assignment: the budget is split between the two groups in
//      proportion to their measured demand, water-filled against the
//      safe cap range so no node is assigned an unreachable cap and the
//      total never exceeds the budget.
//   3. Steady state: an embedded central::ServerLogic refines caps via
//      the normal donation/request traffic. Nodes whose assignment is
//      above their current cap climb through the existing urgency
//      mechanism (they are below their new initial cap, hence urgent),
//      funded by the nodes whose assignment made them donate — so the
//      reassignment is conservative by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "central/server.hpp"
#include "hierarchy/protocol.hpp"
#include "power/power_interface.hpp"

namespace penelope::hierarchy {

struct PoddConfig {
  /// Number of client nodes; nodes [0, n/2) are group A, the rest B
  /// (the paper's half/half coupled setup).
  int n_nodes = 20;
  /// Uniform initial cap all nodes start from (budget / n).
  double initial_cap_watts = 160.0;
  power::SafeRange safe_range;
  /// Steady-state shifting configuration (SLURM-like).
  central::ServerConfig central;
  /// How many profile reports per node to accumulate before assigning.
  int profile_periods = 5;
};

struct GroupAssignment {
  double group_a_cap = 0.0;
  double group_b_cap = 0.0;
};

class PoddServerLogic {
 public:
  explicit PoddServerLogic(PoddConfig config);

  /// Profiling input; returns true while the server is still profiling.
  /// Once every participating node has delivered `profile_periods`
  /// reports the server transitions to the assigned state and
  /// compute_assignment() is valid. A report from a previously-expired
  /// node readmits it (its accumulation restarts from zero).
  bool handle_profile_report(int node, const ProfileReport& report);

  /// Membership input: `node` died (or bumped its epoch) mid-window.
  /// Its accumulated reports are dropped — a crashed node's stale draw
  /// must not skew the surviving nodes' assignment — and it no longer
  /// gates completion. Returns true if expiry finished the window (all
  /// remaining participants had already delivered their reports), in
  /// which case the caller should broadcast assignments. No-op once
  /// profiling is complete.
  bool expire_reports(int node);

  bool profiling_complete() const { return profiling_complete_; }

  /// The learned per-group caps (valid after profiling completes).
  GroupAssignment assignment() const { return assignment_; }

  /// The cap assigned to a specific node.
  double assigned_cap(int node) const;

  /// Measured mean demand of each group (diagnostics / tests).
  double group_a_demand() const;
  double group_b_demand() const;

  /// Steady-state shifting: delegate to the embedded central logic.
  central::ServerLogic& central() { return central_; }
  const central::ServerLogic& central() const { return central_; }

  int config_n_nodes() const { return config_.n_nodes; }

  /// Exposed for tests: the demand-proportional water-filled split of
  /// `total_budget` between two groups of sizes na/nb with per-node
  /// demands da/db, honouring the safe range.
  static GroupAssignment split_budget(double total_budget, int na,
                                      int nb, double da, double db,
                                      const power::SafeRange& range);

 private:
  void finalize();
  bool all_participants_reported() const;

  PoddConfig config_;
  std::vector<double> report_sums_;
  std::vector<int> report_counts_;
  /// Nodes expired from the current window (dead or epoch-bumped);
  /// they neither gate completion nor contribute to group demand.
  std::vector<bool> excluded_;
  bool profiling_complete_ = false;
  GroupAssignment assignment_;
  central::ServerLogic central_;
};

}  // namespace penelope::hierarchy
