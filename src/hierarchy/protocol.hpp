// Wire protocol additions for the PoDD-style hierarchical manager
// (§2.3.3): during the profiling window clients report their observed
// power draw; when the window closes the server pushes each node a new
// initial-cap assignment learned from the profiles. Steady-state power
// shifting afterwards reuses the central protocol unchanged.
#pragma once

#include <cstdint>

namespace penelope::hierarchy {

/// Client -> server, once per period during the profiling window.
struct ProfileReport {
  double avg_power_watts = 0.0;
};

/// Server -> client, once, when profiling concludes: the learned
/// initial cap for this node (PoDD's "centralized, top-level powercap
/// assignment", after which local refinement proceeds as usual).
struct CapAssignment {
  double initial_cap_watts = 0.0;
};

/// Pool -> parent pool, at most one per aggregation period: the pool's
/// current aggregate unmet deficit (watts its own nodes requested that
/// local surplus could not cover). Carries no power — the parent
/// OVERWRITES its per-child pending deficit with the latest value, so
/// a lost or duplicated request can only delay service, never corrupt
/// the ledger.
struct FederatedRequest {
  double deficit_watts = 0.0;
  std::uint64_t txn_id = 0;
  /// Causal power-flow id for telemetry::PowerFlowTracer (0 = untraced):
  /// identifies the demand that originated this deficit so the trace UI
  /// can chain request hops up the tree. Ignored by the protocol.
  std::uint64_t flow = 0;
};

/// Pool -> pool (up = surplus donation above the low-water mark, down =
/// grant against a child's reported deficit). This is the only
/// federation message that moves watts, so it rides the in-flight
/// ledger and the at-most-once txn window like PowerGrant does.
struct FederatedTransfer {
  double watts = 0.0;
  std::uint64_t txn_id = 0;
  /// Causal power-flow id (0 = untraced): the flow that most recently
  /// fed the sending pool, so a watt's multi-hop journey through the
  /// tree renders as one connected chain. Ignored by the protocol.
  std::uint64_t flow = 0;
};

}  // namespace penelope::hierarchy
