// Wire protocol additions for the PoDD-style hierarchical manager
// (§2.3.3): during the profiling window clients report their observed
// power draw; when the window closes the server pushes each node a new
// initial-cap assignment learned from the profiles. Steady-state power
// shifting afterwards reuses the central protocol unchanged.
#pragma once

#include <cstdint>

namespace penelope::hierarchy {

/// Client -> server, once per period during the profiling window.
struct ProfileReport {
  double avg_power_watts = 0.0;
};

/// Server -> client, once, when profiling concludes: the learned
/// initial cap for this node (PoDD's "centralized, top-level powercap
/// assignment", after which local refinement proceeds as usual).
struct CapAssignment {
  double initial_cap_watts = 0.0;
};

}  // namespace penelope::hierarchy
