// Hierarchical pool federation topology (DESIGN.md §13).
//
// Penelope's flat gossip answers "who has excess?" with random probing,
// which is O(N) messages per period and slow to converge once N passes a
// few thousand. Federation interposes a tree of *pools* between the
// deciders and each other: every node banks excess into (and requests
// from) its local leaf pool; pools batch their residual surplus or
// deficit into ONE aggregated message per period to their parent, and
// parents redistribute downward the same way. With P ≈ √N leaf pools the
// inter-pool message volume per period is O(total pools) = O(√N) —
// sublinear in cluster size — while every watt still moves through the
// existing txn/dedup ledger, so conservation auditing is unchanged.
//
// This header is pure topology + configuration: which leaf a node hails,
// which pool parents which, in contiguous index form so the cluster
// layer can overlay it on its shard map. The actor state machine lives
// in cluster/arena.* (it needs the network; this library does not link
// it).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace penelope::hierarchy {

struct FederationConfig {
  /// Leaf pool count; 0 disables federation entirely (the cluster runs
  /// the classic flat-actor path, bit-identical to pre-federation
  /// traces).
  int pools = 0;
  /// Children per inner pool. The tree has ceil(log_fanout(pools)) + 1
  /// levels; fanout >= pools collapses it to leaves + one root.
  int fanout = 8;
  /// Pool aggregation period; 0 means "the decider period".
  common::Ticks period = 0;
  /// Watts a pool keeps as a local serving buffer; surplus above this
  /// federates upward.
  double low_water_watts = 30.0;
};

/// The federation tree in flat index form. Pools are numbered level by
/// level: leaves first ([0, n_leaves)), then each parent level, the root
/// last (index total_pools - 1). Node -> leaf assignment is contiguous
/// and balanced (node i -> leaf i * L / N), which aligns leaf spans with
/// the cluster's contiguous shard assignment so most node<->leaf traffic
/// stays intra-shard.
struct FederationTopology {
  int n_nodes = 0;
  int n_leaves = 0;
  int total_pools = 0;
  int levels = 0;
  /// node -> leaf pool index, size n_nodes.
  std::vector<int> leaf_of_node;
  /// pool -> parent pool index; -1 for the root. Size total_pools.
  std::vector<int> parent;
  /// pool -> child *pool* indices (empty for leaves). Size total_pools.
  std::vector<std::vector<int>> children;
  /// pool -> first node its subtree covers (for shard placement).
  std::vector<int> representative_node;
  /// leaf pool -> covered node span [first, last). Inner pools cover the
  /// union of their children's spans; only leaves need the exact span.
  std::vector<int> leaf_first_node;
  std::vector<int> leaf_last_node;

  bool is_leaf(int pool) const { return pool < n_leaves; }

  /// Build the tree for `n_nodes` clients over `pools` leaves with the
  /// given fanout. pools is clamped to [1, n_nodes], fanout to >= 2.
  static FederationTopology build(int n_nodes, int pools, int fanout);
};

}  // namespace penelope::hierarchy
