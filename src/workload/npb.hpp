// Synthetic power/progress profiles for the NAS Parallel Benchmarks.
//
// The paper runs NPB 3.4 class D — the 5 kernels and 3 pseudo-apps plus
// the UA and DC benchmarks, omitting IS (§4.1: IS doesn't compile past
// class C and finishes too fast). We have no 48-core Skylake nodes, so
// each application is represented by what the power manager actually
// sees of it: a phased power-demand trace plus total work. The phase
// structures below encode each benchmark's well-known character —
// EP is flat compute-bound, CG is memory-bound with irregular spikes,
// FT alternates FFT compute with all-to-all transposes, MG walks the
// multigrid V-cycle, BT/SP/LU are long solver iterations with
// communication dips, UA is adaptive and irregular, DC is I/O-dominated.
// What matters for reproducing the evaluation is exactly this diversity:
// "applications have varying runtimes with different resource usage and
// power needs" (§4.1). Demands are node-level watts for a dual-socket
// Skylake-class node with a 250 W ceiling.
//
// All profiles are deterministic functions of (app, config.seed); the
// per-node jitter the cluster applies on top is seeded separately.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace penelope::workload {

enum class NpbApp { kBT, kCG, kEP, kFT, kLU, kMG, kSP, kUA, kDC };

/// The 9 applications used in the paper's evaluation (IS omitted).
const std::vector<NpbApp>& all_apps();

const char* app_name(NpbApp app);

/// One workload phase: the node wants `demand_watts`; the phase completes
/// after `work_seconds` of full-speed progress (wall time stretches when
/// the node is power-starved).
struct Phase {
  std::string label;
  double demand_watts = 0.0;
  double work_seconds = 0.0;
};

struct WorkloadProfile {
  std::string name;
  std::vector<Phase> phases;

  /// Total full-speed runtime.
  double total_work_seconds() const;
  /// Time-weighted mean demand.
  double mean_demand_watts() const;
  /// Maximum phase demand.
  double peak_demand_watts() const;
};

struct NpbConfig {
  /// Multiplies every phase's work; < 1 shrinks experiments for tests.
  double duration_scale = 1.0;
  /// Relative demand perturbation (uniform ±frac) applied per phase, so
  /// two nodes running the "same" app are not bit-identical.
  double demand_jitter_frac = 0.0;
  std::uint64_t seed = 1;
};

/// Build the profile for one application.
WorkloadProfile npb_profile(NpbApp app, const NpbConfig& config = {});

/// All 36 unordered pairs of distinct applications — the paper's "every
/// unique combination of these 9 applications, yielding 36 pairs".
std::vector<std::pair<NpbApp, NpbApp>> unique_pairs();

/// Scale-study profile (§4.5): a window around one application's
/// completion. The app runs a hot phase for `hot_seconds` of work and
/// then goes idle, releasing a burst of excess power into the system —
/// "power should move from the now idle nodes to those still running".
WorkloadProfile completion_burst_profile(NpbApp app,
                                         double hot_seconds,
                                         const NpbConfig& config = {});

}  // namespace penelope::workload
