// Application progress engine: advances a WorkloadProfile through virtual
// time under whatever power the node actually received, using the concave
// PerformanceModel. This is where "power shifting improves performance"
// becomes measurable — a starved phase stretches in wall time, and the
// experiment runtime (the paper's 1/runtime performance metric) is the
// completion time of the slowest node.
#pragma once

#include <optional>

#include "common/units.hpp"
#include "power/performance_model.hpp"
#include "workload/npb.hpp"

namespace penelope::workload {

class Application {
 public:
  /// `idle_demand_watts` is the node's demand once the workload is done
  /// (package idle floor).
  Application(WorkloadProfile profile, double idle_demand_watts);

  /// Demand of the current phase (idle demand once done).
  double current_demand() const;

  bool done() const { return done_; }

  /// Virtual time the final phase completed; empty until done.
  std::optional<common::Ticks> completion_time() const {
    return completion_time_;
  }

  /// Fraction of total work completed, in [0, 1].
  double fraction_complete() const;

  std::size_t current_phase_index() const { return phase_idx_; }
  const WorkloadProfile& profile() const { return profile_; }

  /// Advance from `from` to `to` assuming the node delivered a constant
  /// `delivered_watts` over the interval. Handles any number of phase
  /// boundaries inside the interval (progress speed changes as demand
  /// changes, power is held constant — the caller samples power at its
  /// control period, which bounds the error). Returns true if the demand
  /// changed (phase transition or completion), signalling the caller to
  /// push the new demand into the power model.
  bool advance(common::Ticks from, common::Ticks to,
               double delivered_watts,
               const power::PerformanceModel& model);

 private:
  WorkloadProfile profile_;
  double idle_demand_;
  double total_work_;
  double work_done_ = 0.0;          ///< across completed phases
  std::size_t phase_idx_ = 0;
  double phase_progress_ = 0.0;     ///< work-seconds inside current phase
  bool done_ = false;
  std::optional<common::Ticks> completion_time_;
};

}  // namespace penelope::workload
