// Workload profile persistence and trace replay.
//
// The paper's scale study runs deciders against "curated profiles of
// power consumption over time for each application" (§4.5). These
// helpers close that loop in both directions: save/load profiles as
// CSV, and curate a profile from a recorded power timeline (e.g. a
// cluster::Trace node series, or real RAPL samples from a production
// node) by merging adjacent samples of similar demand into phases.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "workload/npb.hpp"

namespace penelope::workload {

/// CSV layout: one header line "label,demand_watts,work_seconds", one
/// row per phase. The profile name travels as a "# name: ..." comment.
std::string profile_to_csv(const WorkloadProfile& profile);

/// Parse; nullopt on malformed input (bad header, non-numeric fields,
/// non-positive work).
std::optional<WorkloadProfile> profile_from_csv(const std::string& csv);

bool save_profile_csv(const WorkloadProfile& profile,
                      const std::string& path);
std::optional<WorkloadProfile> load_profile_csv(const std::string& path);

/// One point of a recorded power timeline.
struct PowerSample {
  common::Ticks at = 0;
  double watts = 0.0;
};

struct CurateOptions {
  /// Adjacent samples whose demand differs by no more than this merge
  /// into one phase.
  double merge_tolerance_watts = 5.0;
  /// Phases shorter than this are folded into their neighbour (sensor
  /// blips are not phases).
  double min_phase_seconds = 0.5;
};

/// Build a replayable profile from a sample timeline: each maximal run
/// of similar readings becomes a phase whose demand is the run's mean
/// power and whose work equals the run's wall time (replaying under the
/// same power reproduces the same duration). Requires >= 2 samples with
/// increasing timestamps.
std::optional<WorkloadProfile> curate_profile(
    const std::vector<PowerSample>& samples, const std::string& name,
    const CurateOptions& options = {});

}  // namespace penelope::workload
