#include "workload/application.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace penelope::workload {

Application::Application(WorkloadProfile profile, double idle_demand_watts)
    : profile_(std::move(profile)),
      idle_demand_(idle_demand_watts),
      total_work_(profile_.total_work_seconds()) {
  PEN_CHECK_MSG(!profile_.phases.empty(), "profile must have phases");
  PEN_CHECK(total_work_ > 0.0);
}

double Application::current_demand() const {
  if (done_) return idle_demand_;
  return profile_.phases[phase_idx_].demand_watts;
}

double Application::fraction_complete() const {
  if (done_) return 1.0;
  return std::min(1.0, (work_done_ + phase_progress_) / total_work_);
}

bool Application::advance(common::Ticks from, common::Ticks to,
                          double delivered_watts,
                          const power::PerformanceModel& model) {
  PEN_CHECK(to >= from);
  if (done_ || to == from) return false;

  bool demand_changed = false;
  double remaining_s = common::to_seconds(to - from);
  common::Ticks clock = from;

  while (remaining_s > 0.0 && !done_) {
    const Phase& phase = profile_.phases[phase_idx_];
    double speed = model.speed(delivered_watts, phase.demand_watts);
    double phase_left = phase.work_seconds - phase_progress_;
    PEN_DCHECK(phase_left > 0.0);

    if (speed <= 0.0) {
      // Fully starved: no progress for the rest of the interval.
      break;
    }

    double time_to_finish_phase = phase_left / speed;
    if (time_to_finish_phase > remaining_s) {
      phase_progress_ += speed * remaining_s;
      break;
    }

    // Phase boundary inside the interval: cross it exactly.
    clock += common::from_seconds(time_to_finish_phase);
    remaining_s -= time_to_finish_phase;
    work_done_ += phase.work_seconds;
    phase_progress_ = 0.0;
    ++phase_idx_;
    demand_changed = true;
    if (phase_idx_ >= profile_.phases.size()) {
      done_ = true;
      completion_time_ = clock;
    }
  }
  return demand_changed;
}

}  // namespace penelope::workload
