#include "workload/profile_io.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace penelope::workload {

std::string profile_to_csv(const WorkloadProfile& profile) {
  std::string out = "# name: " + profile.name + "\n";
  out += "label,demand_watts,work_seconds\n";
  char line[256];
  for (const auto& phase : profile.phases) {
    std::snprintf(line, sizeof line, "%s,%.6f,%.6f\n",
                  phase.label.c_str(), phase.demand_watts,
                  phase.work_seconds);
    out += line;
  }
  return out;
}

std::optional<WorkloadProfile> profile_from_csv(const std::string& csv) {
  std::stringstream stream(csv);
  std::string line;
  WorkloadProfile profile;
  bool header_seen = false;

  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (line.rfind("# name:", 0) == 0) {
      std::size_t start = line.find_first_not_of(' ', 7);
      profile.name = start == std::string::npos ? "" : line.substr(start);
      continue;
    }
    if (!header_seen) {
      if (line != "label,demand_watts,work_seconds") return std::nullopt;
      header_seen = true;
      continue;
    }
    auto first_comma = line.find(',');
    auto second_comma = line.find(',', first_comma + 1);
    if (first_comma == std::string::npos ||
        second_comma == std::string::npos)
      return std::nullopt;
    Phase phase;
    phase.label = line.substr(0, first_comma);
    char* end = nullptr;
    std::string demand_str =
        line.substr(first_comma + 1, second_comma - first_comma - 1);
    phase.demand_watts = std::strtod(demand_str.c_str(), &end);
    if (end == demand_str.c_str()) return std::nullopt;
    std::string work_str = line.substr(second_comma + 1);
    phase.work_seconds = std::strtod(work_str.c_str(), &end);
    if (end == work_str.c_str()) return std::nullopt;
    if (phase.work_seconds <= 0.0 || phase.demand_watts < 0.0)
      return std::nullopt;
    profile.phases.push_back(std::move(phase));
  }
  if (!header_seen || profile.phases.empty()) return std::nullopt;
  return profile;
}

bool save_profile_csv(const WorkloadProfile& profile,
                      const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    PEN_LOG_WARN("profile_io: cannot open %s", path.c_str());
    return false;
  }
  f << profile_to_csv(profile);
  return static_cast<bool>(f);
}

std::optional<WorkloadProfile> load_profile_csv(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::stringstream buffer;
  buffer << f.rdbuf();
  return profile_from_csv(buffer.str());
}

std::optional<WorkloadProfile> curate_profile(
    const std::vector<PowerSample>& samples, const std::string& name,
    const CurateOptions& options) {
  if (samples.size() < 2) return std::nullopt;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].at <= samples[i - 1].at) return std::nullopt;
  }

  // Pass 1: greedy segmentation — extend the current run while the next
  // sample stays within tolerance of the running mean.
  struct Segment {
    double watt_seconds = 0.0;
    double seconds = 0.0;
    double mean() const {
      return seconds > 0.0 ? watt_seconds / seconds : 0.0;
    }
  };
  std::vector<Segment> segments;
  Segment current;
  for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
    double dt = common::to_seconds(samples[i + 1].at - samples[i].at);
    double watts = samples[i].watts;
    if (current.seconds > 0.0 &&
        std::fabs(watts - current.mean()) >
            options.merge_tolerance_watts) {
      segments.push_back(current);
      current = Segment{};
    }
    current.watt_seconds += watts * dt;
    current.seconds += dt;
  }
  if (current.seconds > 0.0) segments.push_back(current);

  // Pass 2: suppress blips shorter than min_phase_seconds — their wall
  // time is kept (replay durations must match the recording) but spent
  // at the neighbouring phase's power level, since a sensor blip is not
  // a workload phase.
  std::vector<Segment> folded;
  for (const auto& segment : segments) {
    if (segment.seconds < options.min_phase_seconds && !folded.empty()) {
      folded.back().watt_seconds +=
          segment.seconds * folded.back().mean();
      folded.back().seconds += segment.seconds;
    } else {
      folded.push_back(segment);
    }
  }
  // A leading blip: spend its time at the following segment's level.
  if (folded.size() >= 2 &&
      folded.front().seconds < options.min_phase_seconds) {
    double blip_seconds = folded.front().seconds;
    folded.erase(folded.begin());
    folded.front().watt_seconds += blip_seconds * folded.front().mean();
    folded.front().seconds += blip_seconds;
  }
  if (folded.empty()) return std::nullopt;

  // Pass 3: blip suppression can leave adjacent segments with nearly
  // identical means; merge them back together.
  std::vector<Segment> merged;
  for (const auto& segment : folded) {
    if (!merged.empty() &&
        std::fabs(segment.mean() - merged.back().mean()) <=
            options.merge_tolerance_watts) {
      merged.back().watt_seconds += segment.watt_seconds;
      merged.back().seconds += segment.seconds;
    } else {
      merged.push_back(segment);
    }
  }
  folded = std::move(merged);

  WorkloadProfile profile;
  profile.name = name;
  int index = 0;
  for (const auto& segment : folded) {
    Phase phase;
    phase.label = "phase" + std::to_string(index++);
    phase.demand_watts = segment.mean();
    phase.work_seconds = segment.seconds;
    profile.phases.push_back(std::move(phase));
  }
  return profile;
}

}  // namespace penelope::workload
