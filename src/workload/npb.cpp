#include "workload/npb.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace penelope::workload {

const std::vector<NpbApp>& all_apps() {
  static const std::vector<NpbApp> apps = {
      NpbApp::kBT, NpbApp::kCG, NpbApp::kEP, NpbApp::kFT, NpbApp::kLU,
      NpbApp::kMG, NpbApp::kSP, NpbApp::kUA, NpbApp::kDC};
  return apps;
}

const char* app_name(NpbApp app) {
  switch (app) {
    case NpbApp::kBT: return "BT";
    case NpbApp::kCG: return "CG";
    case NpbApp::kEP: return "EP";
    case NpbApp::kFT: return "FT";
    case NpbApp::kLU: return "LU";
    case NpbApp::kMG: return "MG";
    case NpbApp::kSP: return "SP";
    case NpbApp::kUA: return "UA";
    case NpbApp::kDC: return "DC";
  }
  return "??";
}

double WorkloadProfile::total_work_seconds() const {
  double total = 0.0;
  for (const auto& p : phases) total += p.work_seconds;
  return total;
}

double WorkloadProfile::mean_demand_watts() const {
  double total = total_work_seconds();
  if (total <= 0.0) return 0.0;
  double weighted = 0.0;
  for (const auto& p : phases)
    weighted += p.demand_watts * p.work_seconds;
  return weighted / total;
}

double WorkloadProfile::peak_demand_watts() const {
  double peak = 0.0;
  for (const auto& p : phases)
    peak = std::max(peak, p.demand_watts);
  return peak;
}

namespace {

/// Builder that applies duration scale and demand jitter uniformly.
class ProfileBuilder {
 public:
  ProfileBuilder(std::string name, const NpbConfig& config)
      : config_(config),
        rng_(config.seed ^ std::hash<std::string>{}(name)) {
    profile_.name = std::move(name);
  }

  void phase(const std::string& label, double demand, double work) {
    PEN_CHECK(work > 0.0);
    double jittered = demand;
    if (config_.demand_jitter_frac > 0.0) {
      jittered *= rng_.uniform(1.0 - config_.demand_jitter_frac,
                               1.0 + config_.demand_jitter_frac);
    }
    profile_.phases.push_back(
        Phase{label, jittered, work * config_.duration_scale});
  }

  /// Repeat a [compute, comm] iteration structure `iters` times.
  void iterations(int iters, double compute_demand, double compute_work,
                  double comm_demand, double comm_work) {
    for (int i = 0; i < iters; ++i) {
      phase("compute", compute_demand, compute_work);
      phase("comm", comm_demand, comm_work);
    }
  }

  common::Rng& rng() { return rng_; }

  WorkloadProfile take() { return std::move(profile_); }

 private:
  NpbConfig config_;
  common::Rng rng_;
  WorkloadProfile profile_;
};

}  // namespace

WorkloadProfile npb_profile(NpbApp app, const NpbConfig& config) {
  ProfileBuilder b(app_name(app), config);
  switch (app) {
    case NpbApp::kBT:
      // Block-tridiagonal solver: long compute sweeps with a face
      // exchange between iterations.
      b.phase("init", 150.0, 6.0);
      b.iterations(12, 205.0, 16.0, 150.0, 4.0);
      break;
    case NpbApp::kCG:
      // Conjugate gradient: memory-bound, moderate steady demand with
      // irregular spikes when the sparse structure hits cache.
      b.phase("init", 140.0, 4.0);
      for (int i = 0; i < 10; ++i) {
        b.phase("spmv", 170.0, 11.0);
        b.phase("reduce", i % 3 == 0 ? 190.0 : 160.0, 4.0);
      }
      break;
    case NpbApp::kEP:
      // Embarrassingly parallel: flat, compute-bound, the power hog.
      b.phase("init", 120.0, 2.0);
      b.phase("generate", 230.0, 130.0);
      b.phase("tally", 180.0, 8.0);
      break;
    case NpbApp::kFT:
      // 3-D FFT: compute-heavy FFT passes alternating with all-to-all
      // transposes that drop the package power sharply.
      b.phase("init", 160.0, 5.0);
      b.iterations(9, 215.0, 12.0, 130.0, 6.0);
      break;
    case NpbApp::kLU:
      // LU solver: SSOR sweeps, slightly spikier than BT.
      b.phase("init", 150.0, 5.0);
      b.iterations(14, 210.0, 13.0, 160.0, 3.0);
      break;
    case NpbApp::kMG:
      // Multigrid V-cycles: demand tracks grid level — fine grids are
      // hot, coarse grids are cheap.
      b.phase("init", 150.0, 4.0);
      for (int cycle = 0; cycle < 8; ++cycle) {
        b.phase("fine", 185.0, 8.0);
        b.phase("mid", 160.0, 5.0);
        b.phase("coarse", 135.0, 3.0);
        b.phase("prolong", 175.0, 5.0);
      }
      break;
    case NpbApp::kSP:
      // Scalar pentadiagonal: like BT with shorter iterations.
      b.phase("init", 150.0, 5.0);
      b.iterations(16, 195.0, 10.0, 155.0, 3.0);
      break;
    case NpbApp::kUA:
      // Unstructured adaptive: irregular demand as the mesh refines.
      b.phase("init", 145.0, 4.0);
      for (int i = 0; i < 12; ++i) {
        double demand = 150.0 + 50.0 * std::fabs(std::sin(0.9 * i + 0.4));
        b.phase("adapt", demand, 9.0);
        b.phase("solve", 185.0, 6.0);
      }
      break;
    case NpbApp::kDC:
      // Data cube: I/O-dominated with short compute bursts; the lowest
      // mean power of the suite, hence the main excess-power donor.
      b.phase("init", 110.0, 4.0);
      for (int i = 0; i < 6; ++i) {
        b.phase("io", 90.0, 14.0);
        b.phase("aggregate", 180.0, 5.0);
      }
      break;
  }
  return b.take();
}

std::vector<std::pair<NpbApp, NpbApp>> unique_pairs() {
  std::vector<std::pair<NpbApp, NpbApp>> pairs;
  const auto& apps = all_apps();
  for (std::size_t i = 0; i < apps.size(); ++i)
    for (std::size_t j = i + 1; j < apps.size(); ++j)
      pairs.emplace_back(apps[i], apps[j]);
  return pairs;
}

WorkloadProfile completion_burst_profile(NpbApp app, double hot_seconds,
                                         const NpbConfig& config) {
  PEN_CHECK(hot_seconds > 0.0);
  ProfileBuilder b(std::string("burst-") + app_name(app), config);
  // Run the app's characteristic hot demand, then finish: the node goes
  // idle and its entire cap headroom becomes system excess.
  double hot = npb_profile(app, config).peak_demand_watts();
  b.phase("hot", hot, hot_seconds);
  return b.take();
}

}  // namespace penelope::workload
