// Deterministic parallel map: the primitive under the sweep engine.
//
// Work items are claimed from a shared atomic counter by a fixed pool
// of worker threads, but every result is stored at its item's index, so
// the returned vector is ordered exactly as the input regardless of
// thread count, scheduling, or completion order. Callers that derive
// output only from the returned vector therefore produce byte-identical
// output at jobs=1 and jobs=N — the sweep determinism contract
// (DESIGN.md §11).
//
// An optional claim-order permutation decouples *completion* order from
// *result* order even further: the determinism test drives the pool
// through a shuffled permutation and asserts the output bytes do not
// move.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace penelope::sweep {

/// Resolve a user-facing jobs knob: values >= 1 are taken literally
/// (more jobs than items or cores is allowed — extra workers exit
/// immediately or time-slice); 0 means "one per hardware thread".
inline int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Cap a per-run sim_jobs request so that `sweep_workers` concurrent
/// runs never oversubscribe the machine: each run gets at most
/// hardware / sweep_workers threads (never below 1). sim_jobs is a
/// pure execution knob — every run's trace is bit-identical at any
/// value (pinned by the SimJobs suites) — so clamping it changes wall
/// clock only, never output bytes. `hardware` is injectable for tests;
/// pass 0 to use std::thread::hardware_concurrency().
inline int effective_sim_jobs(int sweep_workers, int requested_sim_jobs,
                              unsigned hardware = 0) {
  if (requested_sim_jobs <= 1) return requested_sim_jobs;
  if (sweep_workers < 1) sweep_workers = 1;
  if (hardware == 0) hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  int per_run = static_cast<int>(hardware) / sweep_workers;
  if (per_run < 1) per_run = 1;
  return requested_sim_jobs < per_run ? requested_sim_jobs : per_run;
}

/// Run fn(i) for every i in [0, count) on `jobs` threads and return the
/// results in index order. fn must be callable concurrently from
/// multiple threads on distinct indices (each sweep run owns its whole
/// world: Simulator, Rng, metrics — see DESIGN.md §11).
///
/// jobs <= 1 runs everything inline on the calling thread (no pool at
/// all), which is the reference serial order. If `claim_order` is
/// non-null it must be a permutation of [0, count) and dictates the
/// order items are *started* in; results stay index-ordered.
///
/// The first exception thrown by fn is rethrown on the calling thread
/// after the pool drains.
template <typename Fn>
auto parallel_map(std::size_t count, int jobs, Fn&& fn,
                  const std::vector<std::size_t>* claim_order = nullptr)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using R = std::decay_t<decltype(fn(std::size_t{0}))>;
  if (count == 0) return {};
  if (claim_order != nullptr) PEN_CHECK(claim_order->size() == count);

  std::vector<std::optional<R>> slots(count);
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto work = [&] {
    for (;;) {
      std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= count) return;
      std::size_t i = claim_order ? (*claim_order)[k] : k;
      try {
        slots[i].emplace(fn(i));
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  int workers = resolve_jobs(jobs);
  if (static_cast<std::size_t>(workers) > count)
    workers = static_cast<int>(count);
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(work);
    for (auto& t : pool) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  std::vector<R> results;
  results.reserve(count);
  for (auto& slot : slots) {
    PEN_CHECK(slot.has_value());
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace penelope::sweep
