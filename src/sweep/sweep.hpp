// Declarative sweep engine: every figure in the paper is a sweep over
// independent cluster runs (seeds × configs × managers), and every run
// is a sealed world — its own Simulator, Rng, Network, and metrics
// registry, sharing no mutable state with any other run. That makes the
// sweep embarrassingly parallel *and* lets us demand a hard determinism
// contract: the result table (including each run's trace_hash) is
// byte-identical whether the sweep executes serially or on N threads.
// See DESIGN.md §11.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/scale.hpp"
#include "common/table.hpp"
#include "sweep/parallel.hpp"
#include "workload/npb.hpp"

namespace penelope::sweep {

/// One fully-specified run: a point of the SweepSpec cross-product with
/// manager and seed already applied to the config.
struct RunSpec {
  cluster::ClusterConfig config;
  workload::NpbApp app_a{};
  workload::NpbApp app_b{};
  workload::NpbConfig npb;
  std::size_t config_index = 0;  ///< which SweepSpec::configs entry
  std::size_t index = 0;         ///< position in expansion order
};

/// Declarative sweep over full cluster runs. Expansion order is fixed
/// and documented — configs outermost, then managers, then seeds — so a
/// spec always yields the same run list, and the run list alone
/// determines result order.
struct SweepSpec {
  std::vector<cluster::ClusterConfig> configs;  ///< at least one base
  std::vector<cluster::ManagerKind> managers;
  std::vector<std::uint64_t> seeds;
  /// Paper workload pairing: nodes [0, n/2) run app_a, the rest app_b.
  workload::NpbApp app_a{};
  workload::NpbApp app_b{};
  workload::NpbConfig npb;

  std::size_t size() const {
    return configs.size() * managers.size() * seeds.size();
  }

  /// The cross-product, in canonical order. Each point's config carries
  /// its manager and seed (npb.seed follows the run seed so workload
  /// jitter varies per seed exactly as run_experiment's single-run path
  /// does).
  std::vector<RunSpec> expand() const;
};

/// A run's result plus the identity and determinism evidence the sweep
/// table reports.
struct SweepRunResult {
  cluster::ManagerKind manager = cluster::ManagerKind::kPenelope;
  std::uint64_t seed = 0;
  std::size_t config_index = 0;
  cluster::RunResult result;
  /// FNV-1a over the run's executed-event trace: two runs with equal
  /// hashes executed the same events at the same virtual times.
  std::uint64_t trace_hash = 0;
  std::uint64_t executed_events = 0;
};

/// Execute one run in complete isolation. Thread-safe by construction:
/// everything it touches is owned by the run.
SweepRunResult execute_run(const RunSpec& spec);

/// Run the whole sweep on `jobs` threads (0 = hardware concurrency,
/// 1 = inline serial). Results are ordered exactly as spec.expand()
/// regardless of thread count or completion order; `claim_order`
/// (a permutation of run indices) shuffles start order for tests.
std::vector<SweepRunResult> run_sweep(
    const SweepSpec& spec, int jobs,
    const std::vector<std::size_t>* claim_order = nullptr);

/// Canonical result table: derived only from the ordered results, so
/// its bytes are the sweep determinism contract's observable.
common::Table sweep_table(const SweepSpec& spec,
                          const std::vector<SweepRunResult>& results);

/// Scale-study points run through the same engine: one ScaleConfig per
/// point, results index-ordered. Used by scale_study and the scale
/// benches' jobs=N mode.
std::vector<cluster::ScaleResult> run_scale_sweep(
    const std::vector<cluster::ScaleConfig>& points, int jobs);

}  // namespace penelope::sweep
