#include "sweep/sweep.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "common/log.hpp"

namespace penelope::sweep {

namespace {

std::string fmt_hash(std::uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, hash);
  return buf;
}

// Concurrency budget for sweep-level jobs=N composed with per-run
// sim_jobs=M: without a cap the product spawns N*M threads. Each run's
// sim_jobs is clamped to hardware/workers (sim_jobs never changes a
// run's output bytes, only its wall clock) and the effective split is
// logged once if anything was clamped.
int sweep_workers_for(std::size_t count, int jobs) {
  int workers = resolve_jobs(jobs);
  if (static_cast<std::size_t>(workers) > count)
    workers = static_cast<int>(count);
  return workers < 1 ? 1 : workers;
}

void log_sim_jobs_clamp(const char* what, int workers, int requested,
                        int effective) {
  if (effective == requested) return;
  unsigned hw = std::thread::hardware_concurrency();
  PEN_LOG_INFO(
      "%s: capping per-run sim_jobs %d -> %d (%d sweep workers x %d "
      "sim threads <= %u hardware threads; output is bit-identical at "
      "any cap)",
      what, requested, effective, workers, effective,
      hw == 0 ? 1u : hw);
}

}  // namespace

std::vector<RunSpec> SweepSpec::expand() const {
  std::vector<RunSpec> runs;
  runs.reserve(size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    for (cluster::ManagerKind manager : managers) {
      for (std::uint64_t seed : seeds) {
        RunSpec run;
        run.config = configs[c];
        run.config.manager = manager;
        run.config.seed = seed;
        run.app_a = app_a;
        run.app_b = app_b;
        run.npb = npb;
        run.npb.seed = seed;
        run.config_index = c;
        run.index = runs.size();
        runs.push_back(run);
      }
    }
  }
  return runs;
}

SweepRunResult execute_run(const RunSpec& spec) {
  cluster::Cluster cl(
      spec.config,
      cluster::make_pair_workloads(spec.app_a, spec.app_b,
                                   spec.config.n_nodes, spec.npb));
  SweepRunResult out;
  out.manager = spec.config.manager;
  out.seed = spec.config.seed;
  out.config_index = spec.config_index;
  out.result = cl.run();
  out.trace_hash = cl.trace_hash();
  out.executed_events = cl.executed_events();
  return out;
}

std::vector<SweepRunResult> run_sweep(
    const SweepSpec& spec, int jobs,
    const std::vector<std::size_t>* claim_order) {
  std::vector<RunSpec> runs = spec.expand();
  const int workers = sweep_workers_for(runs.size(), jobs);
  for (RunSpec& run : runs) {
    int capped = effective_sim_jobs(workers, run.config.sim_jobs);
    log_sim_jobs_clamp("run_sweep", workers, run.config.sim_jobs,
                       capped);
    run.config.sim_jobs = capped;
  }
  return parallel_map(
      runs.size(), jobs,
      [&runs](std::size_t i) { return execute_run(runs[i]); },
      claim_order);
}

common::Table sweep_table(const SweepSpec& spec,
                          const std::vector<SweepRunResult>& results) {
  common::Table table({"config", "manager", "seed", "nodes", "completed",
                       "runtime_s", "requests", "timeouts", "trace_hash"});
  for (const SweepRunResult& r : results) {
    const cluster::ClusterConfig& cfg = spec.configs[r.config_index];
    table.add_row({std::to_string(r.config_index),
                   cluster::manager_name(r.manager),
                   std::to_string(r.seed), std::to_string(cfg.n_nodes),
                   r.result.all_completed ? "yes" : "no",
                   common::fmt_double(r.result.runtime_seconds, 3),
                   std::to_string(r.result.requests_sent),
                   std::to_string(r.result.timeouts),
                   fmt_hash(r.trace_hash)});
  }
  return table;
}

std::vector<cluster::ScaleResult> run_scale_sweep(
    const std::vector<cluster::ScaleConfig>& points, int jobs) {
  std::vector<cluster::ScaleConfig> capped = points;
  const int workers = sweep_workers_for(capped.size(), jobs);
  for (cluster::ScaleConfig& point : capped) {
    int effective = effective_sim_jobs(workers, point.sim_jobs);
    log_sim_jobs_clamp("run_scale_sweep", workers, point.sim_jobs,
                       effective);
    point.sim_jobs = effective;
  }
  return parallel_map(capped.size(), jobs, [&capped](std::size_t i) {
    return cluster::run_scale_experiment(capped[i]);
  });
}

}  // namespace penelope::sweep
