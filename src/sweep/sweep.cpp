#include "sweep/sweep.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace penelope::sweep {

namespace {

std::string fmt_hash(std::uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, hash);
  return buf;
}

}  // namespace

std::vector<RunSpec> SweepSpec::expand() const {
  std::vector<RunSpec> runs;
  runs.reserve(size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    for (cluster::ManagerKind manager : managers) {
      for (std::uint64_t seed : seeds) {
        RunSpec run;
        run.config = configs[c];
        run.config.manager = manager;
        run.config.seed = seed;
        run.app_a = app_a;
        run.app_b = app_b;
        run.npb = npb;
        run.npb.seed = seed;
        run.config_index = c;
        run.index = runs.size();
        runs.push_back(run);
      }
    }
  }
  return runs;
}

SweepRunResult execute_run(const RunSpec& spec) {
  cluster::Cluster cl(
      spec.config,
      cluster::make_pair_workloads(spec.app_a, spec.app_b,
                                   spec.config.n_nodes, spec.npb));
  SweepRunResult out;
  out.manager = spec.config.manager;
  out.seed = spec.config.seed;
  out.config_index = spec.config_index;
  out.result = cl.run();
  out.trace_hash = cl.trace_hash();
  out.executed_events = cl.executed_events();
  return out;
}

std::vector<SweepRunResult> run_sweep(
    const SweepSpec& spec, int jobs,
    const std::vector<std::size_t>* claim_order) {
  const std::vector<RunSpec> runs = spec.expand();
  return parallel_map(
      runs.size(), jobs,
      [&runs](std::size_t i) { return execute_run(runs[i]); },
      claim_order);
}

common::Table sweep_table(const SweepSpec& spec,
                          const std::vector<SweepRunResult>& results) {
  common::Table table({"config", "manager", "seed", "nodes", "completed",
                       "runtime_s", "requests", "timeouts", "trace_hash"});
  for (const SweepRunResult& r : results) {
    const cluster::ClusterConfig& cfg = spec.configs[r.config_index];
    table.add_row({std::to_string(r.config_index),
                   cluster::manager_name(r.manager),
                   std::to_string(r.seed), std::to_string(cfg.n_nodes),
                   r.result.all_completed ? "yes" : "no",
                   common::fmt_double(r.result.runtime_seconds, 3),
                   std::to_string(r.result.requests_sent),
                   std::to_string(r.result.timeouts),
                   fmt_hash(r.trace_hash)});
  }
  return table;
}

std::vector<cluster::ScaleResult> run_scale_sweep(
    const std::vector<cluster::ScaleConfig>& points, int jobs) {
  return parallel_map(points.size(), jobs, [&points](std::size_t i) {
    return cluster::run_scale_experiment(points[i]);
  });
}

}  // namespace penelope::sweep
