// Console table and CSV emission for the benchmark harness. Every bench
// prints the paper's rows/series as an aligned table and mirrors them to a
// CSV file so downstream plotting is trivial.
#pragma once

#include <string>
#include <vector>

namespace penelope::common {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 3);

  std::size_t rows() const { return rows_.size(); }

  /// Render with column alignment and a separator under the header.
  std::string render() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;

  /// Write CSV to `path`; returns false (and logs) on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used across benches.
std::string fmt_double(double v, int precision = 3);
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace penelope::common
