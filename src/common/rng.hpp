// Deterministic pseudo-random number generation.
//
// Library code never touches std::random_device: every stochastic choice
// (peer selection, latency jitter, demand noise, service times) flows from
// a seed the experiment runner owns, so a run is exactly reproducible from
// its config. Rng is PCG32 — small state, good statistical quality, cheap
// to fork into independent per-node streams.
#pragma once

#include <cstdint>
#include <vector>

namespace penelope::common {

/// splitmix64 step — used to expand a user seed into PCG state and to
/// derive independent child seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// PCG32 (O'Neill, pcg-random.org, XSH-RR variant).
class Rng {
 public:
  /// Seeds state and stream from `seed` via splitmix64 so that nearby user
  /// seeds still give unrelated sequences.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  /// Uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Unbiased uniform integer in [0, bound). `bound` must be > 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p);

  /// Derive an independent child generator; deterministic in (this state).
  Rng fork();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(static_cast<std::uint32_t>(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace penelope::common
