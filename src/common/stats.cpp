#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace penelope::common {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  std::size_t n = n_ + other.n_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.n_) /
                            static_cast<double>(n);
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(n_) *
            static_cast<double>(other.n_) / static_cast<double>(n);
  mean_ = mean;
  n_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::mean() const { return n_ ? mean_ : 0.0; }

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return n_ ? min_ : 0.0; }

double OnlineStats::max() const { return n_ ? max_ : 0.0; }

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    PEN_CHECK_MSG(v > 0.0, "geomean requires strictly positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  PEN_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double stddev_of(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = mean_of(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size() - 1));
}

double jain_fairness(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.mean = mean_of(values);
  s.stddev = stddev_of(values);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = percentile(sorted, 25.0);
  s.median = percentile(sorted, 50.0);
  s.p75 = percentile(sorted, 75.0);
  return s;
}

}  // namespace penelope::common
