// Lightweight runtime assertion macros.
//
// PEN_CHECK is always on (benches rely on invariant checking staying active
// in release builds); PEN_DCHECK compiles out in NDEBUG builds and is meant
// for hot paths. Failures print the expression and location and abort —
// an invariant violation in a power manager means the system-wide cap can
// no longer be trusted, so there is nothing sensible to continue with.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace penelope::common {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "PEN_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg && msg[0] ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace penelope::common

#define PEN_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr))                                                         \
      ::penelope::common::check_failed(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define PEN_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr))                                                         \
      ::penelope::common::check_failed(#expr, __FILE__, __LINE__, msg);  \
  } while (0)

#ifdef NDEBUG
#define PEN_DCHECK(expr) ((void)0)
#else
#define PEN_DCHECK(expr) PEN_CHECK(expr)
#endif
