#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/check.hpp"
#include "common/log.hpp"

namespace penelope::common {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PEN_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PEN_CHECK_MSG(cells.size() == headers_.size(),
                "row arity must match header");
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values,
                           int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt_double(v, precision));
  add_row(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
      out += (c + 1 == row.size()) ? "\n" : "  ";
    }
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c], '-');
    out += (c + 1 == headers_.size()) ? "\n" : "  ";
  }
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += csv_escape(row[c]);
      out += (c + 1 == row.size()) ? "\n" : ",";
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    PEN_LOG_WARN("failed to open %s for writing", path.c_str());
    return false;
  }
  f << to_csv();
  return static_cast<bool>(f);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace penelope::common
