#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace penelope::common {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  state_ = splitmix64(sm);
  inc_ = splitmix64(sm) | 1ULL;  // stream selector must be odd
  // Warm up: advance twice so that the first outputs depend on both words.
  next_u32();
  next_u32();
}

std::uint32_t Rng::next_u32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

std::uint32_t Rng::next_below(std::uint32_t bound) {
  PEN_CHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

int Rng::uniform_int(int lo, int hi) {
  PEN_CHECK(lo <= hi);
  auto span = static_cast<std::uint32_t>(hi - lo) + 1u;
  return lo + static_cast<int>(next_below(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  double u2 = next_double();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  PEN_CHECK(mean > 0.0);
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace penelope::common
