#include "common/log.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace penelope::common {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

thread_local int g_log_node = -1;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

void set_log_node(int node) { g_log_node = node; }

int log_node() { return g_log_node; }

namespace {

void vlog_message(LogLevel level, const char* file, int line,
                  std::uint64_t suppressed, const char* fmt,
                  va_list args) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  char body[1024];
  std::vsnprintf(body, sizeof body, fmt, args);

  char tag[16] = "";
  if (g_log_node >= 0)
    std::snprintf(tag, sizeof tag, "[n%02d] ", g_log_node);

  char rated[48] = "";
  if (suppressed > 0)
    std::snprintf(rated, sizeof rated, " (+%llu similar suppressed)",
                  static_cast<unsigned long long>(suppressed));

  std::scoped_lock lock(g_emit_mutex);
  std::fprintf(stderr, "[%9.4f] %s %s:%d  %s%s%s\n", elapsed,
               level_name(level), file, line, tag, body, rated);
}

}  // namespace

void log_message(LogLevel level, const char* file, int line,
                 const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlog_message(level, file, line, 0, fmt, args);
  va_end(args);
}

void log_message_rated(LogLevel level, const char* file, int line,
                       std::uint64_t suppressed, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlog_message(level, file, line, suppressed, fmt, args);
  va_end(args);
}

}  // namespace penelope::common
