// Statistics used by the experiment harness: online mean/variance
// (Welford), geometric means (the paper reports geomean performance
// normalised to Fair), percentiles over sample vectors, and Jain's
// fairness index (used by the ablation benches to quantify power
// hoarding).
#pragma once

#include <cstddef>
#include <vector>

namespace penelope::common {

/// Numerically stable online mean / variance / min / max accumulator.
class OnlineStats {
 public:
  void add(double x);

  /// Merge another accumulator (parallel Welford combination).
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of strictly positive values; returns 0 on empty input.
double geomean(const std::vector<double>& values);

/// p-th percentile (p in [0,100]) by linear interpolation between closest
/// ranks. The input is copied and sorted. Returns 0 on empty input.
double percentile(std::vector<double> values, double p);

/// Median — percentile(values, 50).
double median(std::vector<double> values);

/// Arithmetic mean; 0 on empty input.
double mean_of(const std::vector<double>& values);

/// Sample standard deviation; 0 with fewer than two samples.
double stddev_of(const std::vector<double>& values);

/// Jain's fairness index: (Σx)² / (n · Σx²), in (0, 1]; 1 is perfectly
/// fair. Returns 1 on empty input.
double jain_fairness(const std::vector<double>& values);

/// Summary bundle for reporting a distribution in one table row.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& values);

}  // namespace penelope::common
