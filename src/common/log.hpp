// Minimal leveled logging. The simulator is single-threaded, but the rt::
// runtime logs from many threads, so emission is serialized with one
// mutex. Level is a process-wide atomic so hot paths can early-out with a
// relaxed load before formatting anything.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdint>

namespace penelope::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3,
                            kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

bool log_enabled(LogLevel level);

/// printf-style emission; prefixed with level and monotonic timestamp.
void log_message(LogLevel level, const char* file, int line,
                 const char* fmt, ...) __attribute__((format(printf, 4, 5)));

/// Emission throttle for messages that repeat identically (config
/// fallbacks re-warned by every run of a sweep, per-period protocol
/// nags): the first occurrence always emits, then only every `every`th.
/// One instance per call site, usually a function-local static behind
/// PEN_LOG_WARN_RATED. Thread-safe: occurrence counting is one relaxed
/// fetch_add, same discipline as the level check.
class LogRateLimiter {
 public:
  constexpr explicit LogRateLimiter(std::uint64_t every = 64)
      : every_(every == 0 ? 1 : every) {}

  /// True if this occurrence should be emitted; when emitting, writes
  /// the number of identical occurrences suppressed since the previous
  /// emission into `suppressed` (0 on the first occurrence).
  bool should_emit(std::uint64_t* suppressed = nullptr) {
    std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
    if (n % every_ != 0) return false;
    if (suppressed != nullptr) *suppressed = n == 0 ? 0 : every_ - 1;
    return true;
  }

  /// Total occurrences seen (emitted + suppressed).
  std::uint64_t occurrences() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t every_;
  std::atomic<std::uint64_t> count_{0};
};

/// As log_message, but appends " (+N similar suppressed)" when
/// `suppressed` is nonzero — the emission path of PEN_LOG_WARN_RATED.
void log_message_rated(LogLevel level, const char* file, int line,
                       std::uint64_t suppressed, const char* fmt, ...)
    __attribute__((format(printf, 5, 6)));

/// Thread-local node-id tag: rt threads that serve a specific node call
/// set_log_node(id) once at loop entry, and every log line the thread
/// emits carries an `[nNN]` tag so interleaved multi-node output is
/// attributable. Negative (the default) means untagged.
void set_log_node(int node);
int log_node();

}  // namespace penelope::common

#define PEN_LOG_IMPL(level, ...)                                        \
  do {                                                                  \
    if (::penelope::common::log_enabled(level))                         \
      ::penelope::common::log_message(level, __FILE__, __LINE__,        \
                                      __VA_ARGS__);                     \
  } while (0)

#define PEN_LOG_DEBUG(...) \
  PEN_LOG_IMPL(::penelope::common::LogLevel::kDebug, __VA_ARGS__)
#define PEN_LOG_INFO(...) \
  PEN_LOG_IMPL(::penelope::common::LogLevel::kInfo, __VA_ARGS__)
#define PEN_LOG_WARN(...) \
  PEN_LOG_IMPL(::penelope::common::LogLevel::kWarn, __VA_ARGS__)
#define PEN_LOG_ERROR(...) \
  PEN_LOG_IMPL(::penelope::common::LogLevel::kError, __VA_ARGS__)

// Rate-limited warning: emits the first occurrence at this call site,
// then every `every`th, tagging emissions with the suppressed count.
#define PEN_LOG_WARN_RATED(every, ...)                                  \
  do {                                                                  \
    static ::penelope::common::LogRateLimiter pen_rate_limiter_{every}; \
    std::uint64_t pen_suppressed_ = 0;                                  \
    if (pen_rate_limiter_.should_emit(&pen_suppressed_) &&              \
        ::penelope::common::log_enabled(                                \
            ::penelope::common::LogLevel::kWarn))                       \
      ::penelope::common::log_message_rated(                            \
          ::penelope::common::LogLevel::kWarn, __FILE__, __LINE__,      \
          pen_suppressed_, __VA_ARGS__);                                \
  } while (0)
