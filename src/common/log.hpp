// Minimal leveled logging. The simulator is single-threaded, but the rt::
// runtime logs from many threads, so emission is serialized with one
// mutex. Level is a process-wide atomic so hot paths can early-out with a
// relaxed load before formatting anything.
#pragma once

#include <atomic>
#include <cstdarg>

namespace penelope::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3,
                            kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

bool log_enabled(LogLevel level);

/// printf-style emission; prefixed with level and monotonic timestamp.
void log_message(LogLevel level, const char* file, int line,
                 const char* fmt, ...) __attribute__((format(printf, 4, 5)));

/// Thread-local node-id tag: rt threads that serve a specific node call
/// set_log_node(id) once at loop entry, and every log line the thread
/// emits carries an `[nNN]` tag so interleaved multi-node output is
/// attributable. Negative (the default) means untagged.
void set_log_node(int node);
int log_node();

}  // namespace penelope::common

#define PEN_LOG_IMPL(level, ...)                                        \
  do {                                                                  \
    if (::penelope::common::log_enabled(level))                         \
      ::penelope::common::log_message(level, __FILE__, __LINE__,        \
                                      __VA_ARGS__);                     \
  } while (0)

#define PEN_LOG_DEBUG(...) \
  PEN_LOG_IMPL(::penelope::common::LogLevel::kDebug, __VA_ARGS__)
#define PEN_LOG_INFO(...) \
  PEN_LOG_IMPL(::penelope::common::LogLevel::kInfo, __VA_ARGS__)
#define PEN_LOG_WARN(...) \
  PEN_LOG_IMPL(::penelope::common::LogLevel::kWarn, __VA_ARGS__)
#define PEN_LOG_ERROR(...) \
  PEN_LOG_IMPL(::penelope::common::LogLevel::kError, __VA_ARGS__)
