// Tiny key=value configuration used by examples and bench binaries to
// accept command-line overrides (`./bench_nominal pairs=6 caps=60,80`).
// Unknown keys are an error so typos fail loudly.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace penelope::common {

class Config {
 public:
  Config() = default;

  /// Parse argv entries of the form key=value. Returns false (and records
  /// an error string) on malformed input.
  bool parse_args(int argc, char** argv);

  /// Parse a single "key=value" token.
  bool parse_entry(const std::string& entry);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& def) const;
  double get_double(const std::string& key, double def) const;
  int get_int(const std::string& key, int def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Comma-separated list of doubles, e.g. "60,70,80".
  std::vector<double> get_double_list(const std::string& key,
                                      std::vector<double> def) const;
  std::vector<int> get_int_list(const std::string& key,
                                std::vector<int> def) const;

  /// Keys that were parsed but never read — surfaced so binaries can
  /// reject typos.
  std::vector<std::string> unused_keys() const;

  const std::string& error() const { return error_; }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> read_;
  std::string error_;
};

}  // namespace penelope::common
