// Fixed-width-bucket histogram for latency / power distributions, plus an
// ASCII renderer the benches use to show distribution shape inline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace penelope::common {

class Histogram {
 public:
  /// Buckets of equal width covering [lo, hi); samples outside the range
  /// are counted in underflow/overflow.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Approximate quantile from bucket boundaries (q in [0,1]).
  double quantile(double q) const;

  /// Multi-line ASCII bar rendering, `width` characters for the largest
  /// bucket.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace penelope::common
