#include "common/config.hpp"

#include <cstdlib>
#include <sstream>

namespace penelope::common {

bool Config::parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!parse_entry(argv[i])) return false;
  }
  return true;
}

bool Config::parse_entry(const std::string& entry) {
  auto eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    error_ = "expected key=value, got: " + entry;
    return false;
  }
  values_[entry.substr(0, eq)] = entry.substr(eq + 1);
  return true;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  read_.insert(key);
  return it->second;
}

double Config::get_double(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  read_.insert(key);
  return std::strtod(it->second.c_str(), nullptr);
}

int Config::get_int(const std::string& key, int def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  read_.insert(key);
  return static_cast<int>(std::strtol(it->second.c_str(), nullptr, 10));
}

bool Config::get_bool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  read_.insert(key);
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

namespace {
std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, ',')) parts.push_back(part);
  return parts;
}
}  // namespace

std::vector<double> Config::get_double_list(
    const std::string& key, std::vector<double> def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  read_.insert(key);
  std::vector<double> out;
  for (const auto& p : split_commas(it->second))
    out.push_back(std::strtod(p.c_str(), nullptr));
  return out;
}

std::vector<int> Config::get_int_list(const std::string& key,
                                      std::vector<int> def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  read_.insert(key);
  std::vector<int> out;
  for (const auto& p : split_commas(it->second))
    out.push_back(static_cast<int>(std::strtol(p.c_str(), nullptr, 10)));
  return out;
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    (void)v;
    if (!read_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace penelope::common
