// Physical units and time representation used throughout the library.
//
// Power values are plain doubles in watts — the arithmetic (shares,
// clamps, exponential decay) is too dense for strong types to pay off —
// but all public APIs name their parameters `*_watts` / `*_joules` and the
// helpers here centralise epsilon handling so modules never invent their
// own tolerance.
//
// Virtual time is an integer count of microseconds (`Ticks`). Integer time
// keeps the discrete-event simulator exact: two events scheduled for the
// same instant compare equal and are ordered by sequence number instead of
// floating-point luck.
#pragma once

#include <cmath>
#include <cstdint>

namespace penelope::common {

/// Virtual (or real) time in microseconds.
using Ticks = std::int64_t;

inline constexpr Ticks kTicksPerMicrosecond = 1;
inline constexpr Ticks kTicksPerMillisecond = 1'000;
inline constexpr Ticks kTicksPerSecond = 1'000'000;

constexpr Ticks from_seconds(double s) {
  return static_cast<Ticks>(s * static_cast<double>(kTicksPerSecond));
}
constexpr Ticks from_millis(double ms) {
  return static_cast<Ticks>(ms * static_cast<double>(kTicksPerMillisecond));
}
constexpr double to_seconds(Ticks t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}
constexpr double to_millis(Ticks t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerMillisecond);
}

/// Tolerance for comparing power values in watts. RAPL-class hardware
/// reports in units of ~61 µW; anything below a milliwatt is noise for
/// power *management* purposes.
inline constexpr double kWattEpsilon = 1e-6;

/// True if two power values are equal within kWattEpsilon.
inline bool watts_equal(double a, double b) {
  return std::fabs(a - b) <= kWattEpsilon;
}

/// True if `a` is definitely less than `b` (outside the tolerance band).
inline bool watts_less(double a, double b) { return a < b - kWattEpsilon; }

/// Clamp a power value into [lo, hi].
inline double clamp_watts(double w, double lo, double hi) {
  return w < lo ? lo : (w > hi ? hi : w);
}

/// Energy accumulated by a constant power over a tick interval, in joules.
inline double joules_over(double watts, Ticks dt) {
  return watts * to_seconds(dt);
}

}  // namespace penelope::common
