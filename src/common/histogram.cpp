#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace penelope::common {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  PEN_CHECK(hi > lo);
  PEN_CHECK(buckets > 0);
  bucket_width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bucket_width_);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return bucket_lo(i) + bucket_width_;
}

double Histogram::quantile(double q) const {
  PEN_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  // Continuous rank r in [0, total]: each populated bucket spreads its
  // count uniformly over its width, so the quantile interpolates
  // linearly *within* the selected bucket and moves smoothly with q
  // instead of clamping to a bucket-edge rank. Underflow mass sits
  // entirely at lo_; overflow at hi_.
  double r = q * static_cast<double>(total_);
  double seen = static_cast<double>(underflow_);
  if (underflow_ > 0 && r <= seen) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    double c = static_cast<double>(counts_[i]);
    if (r <= seen + c) {
      double frac = (r - seen) / c;
      if (frac < 0.0) frac = 0.0;
      return bucket_lo(i) + frac * bucket_width_;
    }
    seen += c;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::size_t bar =
        peak == 0 ? 0 : counts_[i] * width / peak;
    std::snprintf(line, sizeof line, "[%10.3f, %10.3f) %8zu |",
                  bucket_lo(i), bucket_hi(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow_ || overflow_) {
    std::snprintf(line, sizeof line, "underflow=%zu overflow=%zu\n",
                  underflow_, overflow_);
    out += line;
  }
  return out;
}

}  // namespace penelope::common
