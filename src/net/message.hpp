// Message and addressing types shared by the network substrate and the
// protocol layers above it. The payload is type-erased so the network
// stays protocol-agnostic; the power-management protocols define their
// concrete payload structs in core/protocol.hpp.
#pragma once

#include <any>
#include <cstdint>

#include "common/units.hpp"

namespace penelope::net {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  std::uint64_t id = 0;           ///< unique per network instance
  common::Ticks sent_at = 0;      ///< virtual time the send was issued
  bool duplicate = false;         ///< fabric-injected extra copy (same id)
  std::any payload;

  /// Typed payload access; returns nullptr if the payload holds a
  /// different type.
  template <typename T>
  const T* as() const {
    return std::any_cast<T>(&payload);
  }
};

}  // namespace penelope::net
