// Message and addressing types shared by the network substrate and the
// protocol layers above it.
//
// The payload is a closed variant over the concrete protocol structs
// (core/, central/, hierarchy/) rather than a type-erased std::any: the
// set of messages the managers exchange is fixed by the wire codec, so
// an open payload type bought nothing except one heap allocation per
// send (std::any's alternatives are all larger than its inline buffer)
// and an RTTI-based dispatch per as<T>(). The variant stores every
// alternative inline (32 bytes including the discriminant), is
// trivially copyable — so a whole Message moves by memcpy through the
// event queue and the in-flight slab — and as<T>() compiles down to an
// index compare. See DESIGN.md §11.
#pragma once

#include <cstdint>
#include <variant>

#include "central/protocol.hpp"
#include "common/units.hpp"
#include "core/protocol.hpp"
#include "hierarchy/protocol.hpp"

namespace penelope::net {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// Every payload a Message can carry: the eleven wire-codec message
/// types, plus monostate for a default-constructed (empty) Message.
/// Keep the alternative order in sync with WireTag (codec.hpp) — the
/// codec round-trip test pins both.
using Payload =
    std::variant<std::monostate, core::PowerRequest, core::PowerGrant,
                 central::CentralDonation, central::CentralRequest,
                 central::CentralGrant, hierarchy::ProfileReport,
                 hierarchy::CapAssignment, core::PowerPush,
                 core::Heartbeat, hierarchy::FederatedRequest,
                 hierarchy::FederatedTransfer>;

static_assert(std::is_trivially_copyable_v<Payload>,
              "Payload must stay trivially copyable: the fabric relies "
              "on memcpy moves for zero-allocation delivery");

struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  std::uint64_t id = 0;           ///< unique per network instance
  common::Ticks sent_at = 0;      ///< virtual time the send was issued
  bool duplicate = false;         ///< fabric-injected extra copy (same id)
  /// Wire-corruption marker: 0 = clean, otherwise 1 + the index of the
  /// frame bit the corruption nemesis flips at delivery. The flip is
  /// applied to the real encoded frame and fed through decode_checked,
  /// so corruption exercises the production codec path, not a shortcut.
  std::uint32_t corrupt = 0;
  Payload payload;

  /// Typed payload access; returns nullptr if the payload holds a
  /// different type.
  template <typename T>
  const T* as() const {
    return std::get_if<T>(&payload);
  }
};

static_assert(std::is_trivially_copyable_v<Message>,
              "Message must stay trivially copyable (slab + event moves)");

}  // namespace penelope::net
