#include "net/codec.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <utility>

#include "common/check.hpp"

namespace penelope::net {

namespace {

// Fixed little-endian primitives. std::bit_cast keeps the double
// encoding exact (IEEE-754 bits, not text).

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == size_; }

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return data_[pos_++];
  }

  std::uint64_t u64() {
    if (!require(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  std::uint32_t u32() {
    if (!require(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  double f64() { return std::bit_cast<double>(u64()); }

  bool boolean() { return u8() != 0; }

 private:
  bool require(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::size_t encoded_size(const WirePayload& payload) {
  // tag byte + body
  return 1 + std::visit(
                 [](const auto& msg) -> std::size_t {
                   using T = std::decay_t<decltype(msg)>;
                   if constexpr (std::is_same_v<T, core::PowerRequest>) {
                     return 1 + 8 + 8;  // urgent, alpha, txn
                   } else if constexpr (std::is_same_v<T,
                                                       core::PowerGrant>) {
                     return 8 + 8 + 4;  // watts, txn, hint
                   } else if constexpr (std::is_same_v<
                                            T, central::CentralDonation>) {
                     return 8 + 8;  // watts, txn
                   } else if constexpr (std::is_same_v<
                                            T, central::CentralRequest>) {
                     return 1 + 8 + 8;
                   } else if constexpr (std::is_same_v<
                                            T, central::CentralGrant>) {
                     return 8 + 1 + 8;
                   } else if constexpr (std::is_same_v<
                                            T, hierarchy::ProfileReport>) {
                     return 8;
                   } else if constexpr (std::is_same_v<
                                            T, hierarchy::CapAssignment>) {
                     return 8;
                   } else if constexpr (std::is_same_v<T,
                                                       core::PowerPush>) {
                     return 8 + 8;  // watts, txn
                   } else if constexpr (std::is_same_v<T,
                                                       core::Heartbeat>) {
                     return 4 + 4;  // node, incarnation
                   } else if constexpr (std::is_same_v<
                                            T,
                                            hierarchy::FederatedRequest>) {
                     return 8 + 8 + 8;  // deficit, txn, flow
                   } else {
                     static_assert(
                         std::is_same_v<T, hierarchy::FederatedTransfer>);
                     return 8 + 8 + 8;  // watts, txn, flow
                   }
                 },
                 payload);
}

std::vector<std::uint8_t> encode(const WirePayload& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(payload));
  std::visit(
      [&out](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, core::PowerRequest>) {
          put_u8(out, static_cast<std::uint8_t>(WireTag::kPowerRequest));
          put_u8(out, msg.urgent ? 1 : 0);
          put_f64(out, msg.alpha_watts);
          put_u64(out, msg.txn_id);
        } else if constexpr (std::is_same_v<T, core::PowerGrant>) {
          put_u8(out, static_cast<std::uint8_t>(WireTag::kPowerGrant));
          put_f64(out, msg.watts);
          put_u64(out, msg.txn_id);
          put_i32(out, msg.hint_peer);
        } else if constexpr (std::is_same_v<T, central::CentralDonation>) {
          put_u8(out,
                 static_cast<std::uint8_t>(WireTag::kCentralDonation));
          put_f64(out, msg.watts);
          put_u64(out, msg.txn_id);
        } else if constexpr (std::is_same_v<T, central::CentralRequest>) {
          put_u8(out,
                 static_cast<std::uint8_t>(WireTag::kCentralRequest));
          put_u8(out, msg.urgent ? 1 : 0);
          put_f64(out, msg.alpha_watts);
          put_u64(out, msg.txn_id);
        } else if constexpr (std::is_same_v<T, central::CentralGrant>) {
          put_u8(out, static_cast<std::uint8_t>(WireTag::kCentralGrant));
          put_f64(out, msg.watts);
          put_u8(out, msg.release_to_initial ? 1 : 0);
          put_u64(out, msg.txn_id);
        } else if constexpr (std::is_same_v<T, hierarchy::ProfileReport>) {
          put_u8(out,
                 static_cast<std::uint8_t>(WireTag::kProfileReport));
          put_f64(out, msg.avg_power_watts);
        } else if constexpr (std::is_same_v<T,
                                            hierarchy::CapAssignment>) {
          put_u8(out,
                 static_cast<std::uint8_t>(WireTag::kCapAssignment));
          put_f64(out, msg.initial_cap_watts);
        } else if constexpr (std::is_same_v<T, core::PowerPush>) {
          put_u8(out, static_cast<std::uint8_t>(WireTag::kPowerPush));
          put_f64(out, msg.watts);
          put_u64(out, msg.txn_id);
        } else if constexpr (std::is_same_v<T, core::Heartbeat>) {
          put_u8(out, static_cast<std::uint8_t>(WireTag::kHeartbeat));
          put_i32(out, msg.node);
          put_u32(out, msg.incarnation);
        } else if constexpr (std::is_same_v<T,
                                            hierarchy::FederatedRequest>) {
          put_u8(out,
                 static_cast<std::uint8_t>(WireTag::kFederatedRequest));
          put_f64(out, msg.deficit_watts);
          put_u64(out, msg.txn_id);
          put_u64(out, msg.flow);
        } else {
          static_assert(std::is_same_v<T, hierarchy::FederatedTransfer>);
          put_u8(out,
                 static_cast<std::uint8_t>(WireTag::kFederatedTransfer));
          put_f64(out, msg.watts);
          put_u64(out, msg.txn_id);
          put_u64(out, msg.flow);
        }
      },
      payload);
  PEN_DCHECK(out.size() == encoded_size(payload));
  return out;
}

std::optional<WirePayload> decode(const std::uint8_t* data,
                                  std::size_t size) {
  if (data == nullptr || size == 0) return std::nullopt;
  Reader reader(data, size);
  auto tag = static_cast<WireTag>(reader.u8());
  WirePayload payload;
  switch (tag) {
    case WireTag::kPowerRequest: {
      core::PowerRequest msg;
      msg.urgent = reader.boolean();
      msg.alpha_watts = reader.f64();
      msg.txn_id = reader.u64();
      payload = msg;
      break;
    }
    case WireTag::kPowerGrant: {
      core::PowerGrant msg;
      msg.watts = reader.f64();
      msg.txn_id = reader.u64();
      msg.hint_peer = reader.i32();
      payload = msg;
      break;
    }
    case WireTag::kCentralDonation: {
      central::CentralDonation msg;
      msg.watts = reader.f64();
      msg.txn_id = reader.u64();
      payload = msg;
      break;
    }
    case WireTag::kCentralRequest: {
      central::CentralRequest msg;
      msg.urgent = reader.boolean();
      msg.alpha_watts = reader.f64();
      msg.txn_id = reader.u64();
      payload = msg;
      break;
    }
    case WireTag::kCentralGrant: {
      central::CentralGrant msg;
      msg.watts = reader.f64();
      msg.release_to_initial = reader.boolean();
      msg.txn_id = reader.u64();
      payload = msg;
      break;
    }
    case WireTag::kProfileReport: {
      hierarchy::ProfileReport msg;
      msg.avg_power_watts = reader.f64();
      payload = msg;
      break;
    }
    case WireTag::kCapAssignment: {
      hierarchy::CapAssignment msg;
      msg.initial_cap_watts = reader.f64();
      payload = msg;
      break;
    }
    case WireTag::kPowerPush: {
      core::PowerPush msg;
      msg.watts = reader.f64();
      msg.txn_id = reader.u64();
      payload = msg;
      break;
    }
    case WireTag::kHeartbeat: {
      core::Heartbeat msg;
      msg.node = reader.i32();
      msg.incarnation = reader.u32();
      payload = msg;
      break;
    }
    case WireTag::kFederatedRequest: {
      hierarchy::FederatedRequest msg;
      msg.deficit_watts = reader.f64();
      msg.txn_id = reader.u64();
      msg.flow = reader.u64();
      payload = msg;
      break;
    }
    case WireTag::kFederatedTransfer: {
      hierarchy::FederatedTransfer msg;
      msg.watts = reader.f64();
      msg.txn_id = reader.u64();
      msg.flow = reader.u64();
      payload = msg;
      break;
    }
    default:
      return std::nullopt;
  }
  if (!reader.ok() || !reader.exhausted()) return std::nullopt;
  return payload;
}

std::optional<WirePayload> decode(const std::vector<std::uint8_t>& buf) {
  return decode(buf.data(), buf.size());
}

const char* decode_error_name(DecodeError error) {
  switch (error) {
    case DecodeError::kOk: return "ok";
    case DecodeError::kTruncated: return "truncated";
    case DecodeError::kBadMagic: return "bad_magic";
    case DecodeError::kBadChecksum: return "bad_checksum";
    case DecodeError::kUnknownTag: return "unknown_tag";
    case DecodeError::kMalformed: return "malformed";
  }
  return "?";
}

std::uint32_t fnv1a32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

std::size_t frame_size(const WirePayload& payload) {
  return kFrameHeaderBytes + encoded_size(payload);
}

std::vector<std::uint8_t> encode_frame(const WirePayload& payload) {
  std::vector<std::uint8_t> body = encode(payload);
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + body.size());
  put_u8(out, kFrameMagic);
  put_u32(out, fnv1a32(body.data(), body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

CheckedDecode decode_checked(const std::uint8_t* data, std::size_t size) {
  CheckedDecode result;
  if (data == nullptr || size < kFrameHeaderBytes + 1) {
    result.error = DecodeError::kTruncated;
    return result;
  }
  if (data[0] != kFrameMagic) {
    result.error = DecodeError::kBadMagic;
    return result;
  }
  std::uint32_t want = 0;
  for (int i = 0; i < 4; ++i) {
    want |= static_cast<std::uint32_t>(data[1 + i]) << (8 * i);
  }
  const std::uint8_t* body = data + kFrameHeaderBytes;
  const std::size_t body_size = size - kFrameHeaderBytes;
  if (fnv1a32(body, body_size) != want) {
    result.error = DecodeError::kBadChecksum;
    return result;
  }
  result.payload = decode(body, body_size);
  if (!result.payload) {
    // Checksum matched, so the sender really emitted these bytes:
    // distinguish a tag we have never assigned from a structurally
    // broken body (wrong length for its tag).
    const std::uint8_t tag = body[0];
    result.error =
        (tag < static_cast<std::uint8_t>(WireTag::kPowerRequest) ||
         tag > static_cast<std::uint8_t>(WireTag::kFederatedTransfer))
            ? DecodeError::kUnknownTag
            : DecodeError::kMalformed;
  }
  return result;
}

CheckedDecode decode_checked(const std::vector<std::uint8_t>& buf) {
  return decode_checked(buf.data(), buf.size());
}

namespace {

// All message types are fixed-size, so the wire cost of a Payload is a
// function of its alternative index alone. Deriving the table from
// encoded_size keeps the codec the single source of truth.
template <std::size_t I>
std::size_t alternative_wire_size() {
  using T = std::variant_alternative_t<I, Payload>;
  if constexpr (std::is_same_v<T, std::monostate>) {
    return 0;
  } else {
    return encoded_size(WirePayload{T{}});
  }
}

template <std::size_t... Is>
std::array<std::size_t, sizeof...(Is)> make_payload_sizes(
    std::index_sequence<Is...>) {
  return {alternative_wire_size<Is>()...};
}

}  // namespace

std::size_t payload_wire_bytes(const Payload& payload) {
  static const auto kSizes = make_payload_sizes(
      std::make_index_sequence<std::variant_size_v<Payload>>{});
  return kSizes[payload.index()];
}

}  // namespace penelope::net
