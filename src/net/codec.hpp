// Binary wire codec for every protocol message in the system.
//
// The simulator passes payloads as the inline net::Payload variant, but
// a real deployment of Penelope speaks over sockets; this codec defines
// that wire format and
// round-trips every message type the managers exchange. Encoding is a
// 1-byte type tag followed by fixed-width little-endian fields — no
// varints, no padding, no host-endianness leaks — so a packet is
// decodable by any implementation of this spec.
//
// Decode is total: any input (truncated, wrong tag, trailing bytes)
// yields std::nullopt rather than UB, which the fuzz-style tests lean
// on.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "central/protocol.hpp"
#include "core/protocol.hpp"
#include "hierarchy/protocol.hpp"
#include "net/message.hpp"

namespace penelope::net {

/// Every message the managers exchange.
using WirePayload =
    std::variant<core::PowerRequest, core::PowerGrant,
                 central::CentralDonation, central::CentralRequest,
                 central::CentralGrant, hierarchy::ProfileReport,
                 hierarchy::CapAssignment, core::PowerPush,
                 core::Heartbeat, hierarchy::FederatedRequest,
                 hierarchy::FederatedTransfer>;

/// Type tags on the wire (stable ABI — append only).
enum class WireTag : std::uint8_t {
  kPowerRequest = 1,
  kPowerGrant = 2,
  kCentralDonation = 3,
  kCentralRequest = 4,
  kCentralGrant = 5,
  kProfileReport = 6,
  kCapAssignment = 7,
  kPowerPush = 8,
  kHeartbeat = 9,
  kFederatedRequest = 10,
  kFederatedTransfer = 11,
};

/// Serialize a payload; always succeeds (all message types are fixed
/// size).
std::vector<std::uint8_t> encode(const WirePayload& payload);

/// Parse a packet; nullopt on truncation, unknown tag, or trailing
/// garbage.
std::optional<WirePayload> decode(const std::uint8_t* data,
                                  std::size_t size);
std::optional<WirePayload> decode(const std::vector<std::uint8_t>& buf);

/// Encoded size of a payload (for buffer pre-sizing).
std::size_t encoded_size(const WirePayload& payload);

// --- Checksummed frames -------------------------------------------------
//
// The bare body codec above trusts the transport; a hostile or lossy
// wire (bit flips, truncation, garbage datagrams) needs an integrity
// layer. A frame is
//
//   [magic u8 = 0xA7][fnv1a32(body) u32 LE][body]
//
// FNV-1a's per-byte step is a bijection on the 32-bit state, so any
// single-bit flip in the body always changes the checksum; flips in the
// header are caught by the magic/checksum fields themselves. Frames are
// the format the UDP runtime speaks and the format the simulator's
// corruption nemesis attacks.

/// Why a frame failed to decode. kOk is never returned with a nullopt
/// payload.
enum class DecodeError : std::uint8_t {
  kOk = 0,
  kTruncated,      ///< shorter than the frame header, or body cut short
  kBadMagic,       ///< first byte is not kFrameMagic
  kBadChecksum,    ///< body bytes do not match the header checksum
  kUnknownTag,     ///< checksum ok but the type tag is unassigned
  kMalformed,      ///< checksum ok but the body fails structural decode
};

/// Stable short name for logs/metrics ("ok", "truncated", ...).
const char* decode_error_name(DecodeError error);

inline constexpr std::uint8_t kFrameMagic = 0xA7;
inline constexpr std::size_t kFrameHeaderBytes = 5;  // magic + checksum

/// FNV-1a over `size` bytes (offset basis 2166136261).
std::uint32_t fnv1a32(const std::uint8_t* data, std::size_t size);

/// Serialize a payload with the frame header prepended.
std::vector<std::uint8_t> encode_frame(const WirePayload& payload);

/// Frame size of a payload (kFrameHeaderBytes + encoded_size).
std::size_t frame_size(const WirePayload& payload);

/// Result of a checked frame decode: payload engaged iff error == kOk.
struct CheckedDecode {
  std::optional<WirePayload> payload;
  DecodeError error = DecodeError::kOk;
  explicit operator bool() const { return payload.has_value(); }
};

/// Parse a frame; never aborts, classifies every failure. Hostile bytes
/// of any length are safe input.
CheckedDecode decode_checked(const std::uint8_t* data, std::size_t size);
CheckedDecode decode_checked(const std::vector<std::uint8_t>& buf);

/// Wire-encoded size of a simulator Payload: what this message would
/// cost on a real fabric. Zero for monostate (an empty Message never
/// crosses a wire). One table lookup — safe on the zero-allocation
/// send path; feeds NetworkStats::payload_bytes_sent.
std::size_t payload_wire_bytes(const Payload& payload);

}  // namespace penelope::net
