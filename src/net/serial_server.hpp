// Serial-service request queue: the queueing model behind both SLURM's
// central server and each Penelope power pool.
//
// The paper measures SLURM's server processing requests *serially* at
// 80–100 µs each (§4.5.2) and observes packet drops once the arrival rate
// overruns it (the knee in Figures 5 and 7). This class reproduces that
// mechanism: arriving messages wait in a bounded FIFO, a single virtual
// service loop pops them one at a time, each service occupies the server
// for a sampled service time, and arrivals that find the queue full are
// dropped. Queue wait + service time land in the response latency
// automatically because everything happens in virtual time.
//
// Penelope's pools use the same model with a much smaller service time —
// a pool lookup is a local cache probe, not a global allocation decision —
// and, crucially, load is spread over N pools instead of one server.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace penelope::net {

struct SerialServerConfig {
  /// Service time is sampled uniformly from [service_min, service_max].
  common::Ticks service_min = 80;   // 80 us, paper's measured floor
  common::Ticks service_max = 100;  // 100 us, paper's measured ceiling
  /// Arrivals beyond this backlog are dropped (packet drop).
  std::size_t queue_capacity = 1024;
  std::uint64_t seed = 7;
};

struct SerialServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped_overflow = 0;
  std::uint64_t peak_queue_depth = 0;
  /// Total virtual time requests spent waiting in the queue (not being
  /// served), for mean-wait reporting.
  common::Ticks total_queue_wait = 0;
  /// Total service time spent processing.
  common::Ticks total_service_time = 0;

  double mean_queue_wait_us() const {
    return processed ? static_cast<double>(total_queue_wait) /
                           static_cast<double>(processed)
                     : 0.0;
  }
};

/// Wraps a message handler in the serial-service discipline. Register
/// `inbox()` as the node's network endpoint.
class SerialServer {
 public:
  using Handler = std::function<void(const Message&)>;

  SerialServer(sim::Simulator& sim, SerialServerConfig config,
               Handler handler);

  SerialServer(const SerialServer&) = delete;
  SerialServer& operator=(const SerialServer&) = delete;

  /// Endpoint adapter: enqueue a message for serial processing.
  void inbox(const Message& msg);

  /// Stop accepting and processing (used when the hosting node fails).
  /// Queued messages are discarded through the drop handler.
  void halt();
  /// Undo halt(): accept and process again (crash-restart recovery).
  /// If a service completion was in flight when halt() hit, busy_ is
  /// still set; that event self-heals it and restarts the loop.
  void resume();
  bool halted() const { return halted_; }

  /// Observer for messages dropped by queue overflow or halt(); used by
  /// the cluster layer to strand the watts carried in lost donations.
  void set_drop_handler(Handler handler) {
    drop_handler_ = std::move(handler);
  }

  std::size_t queue_depth() const { return queue_.size(); }
  const SerialServerStats& stats() const { return stats_; }

 private:
  struct Pending {
    Message msg;
    common::Ticks enqueued_at;
  };

  void maybe_start_service();

  sim::Simulator& sim_;
  SerialServerConfig config_;
  Handler handler_;
  Handler drop_handler_;
  common::Rng rng_;
  std::deque<Pending> queue_;
  bool busy_ = false;
  bool halted_ = false;
  SerialServerStats stats_;
};

}  // namespace penelope::net
