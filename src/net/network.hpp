// Simulated message-passing network on top of the discrete-event engine.
//
// Models the properties the paper's evaluation depends on:
//   * per-message latency with jitter (turnaround-time floors),
//   * random loss (lossy fabric),
//   * node failures (the Figure 3 server-kill experiment),
//   * network partitions (mentioned as a centralized failure mode in §1).
//
// Delivery is a scheduled simulator event that invokes the destination's
// registered handler; the network never reorders equal-latency messages
// (the event queue is FIFO at equal timestamps), and all jitter comes
// from a seeded Rng so runs are reproducible.
//
// Beyond loss, the fabric can inject the two faults a real UDP transport
// exhibits: duplication (an extra delayed copy of the same message id)
// and reordering (a large latency spike that makes an earlier send arrive
// after later ones). Both draw from the same seeded Rng, and both draw
// nothing when their probability is zero, so existing seeds replay
// bit-identically with the faults disabled.
//
// The send→deliver path performs zero heap allocations in steady state
// (DESIGN.md §11): payloads are a trivially-copyable variant stored
// inline in the Message, node tables are dense vectors indexed by
// NodeId, in-flight messages live in a free-listed slab, and the
// delivery closure ({this, slot}) fits sim::EventFn's inline buffer.
// After warm-up (slab/heap high-water marks reached), sending and
// delivering touch the allocator not at all — pinned by the
// net.zero_alloc ctest case (bench_network --alloc-check).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace penelope::net {

struct LatencyModel {
  /// Fixed one-way latency component.
  common::Ticks base = common::from_millis(0.05);  // 50 us
  /// Gaussian jitter stddev added to base (truncated at >= 1 us total).
  common::Ticks jitter_stddev = common::from_millis(0.01);
};

struct NetworkConfig {
  LatencyModel latency;
  /// Probability any message is silently lost in the fabric.
  double loss_probability = 0.0;
  std::uint64_t seed = 1;
  /// Probability a message that survived loss/partition is delivered
  /// twice: a second copy (Message::duplicate = true, same id) is
  /// scheduled with its own sampled latency.
  double duplicate_probability = 0.0;
  /// Probability a scheduled copy gets an extra delay drawn uniformly
  /// from [reorder_delay / 2, reorder_delay], inverting its arrival
  /// order relative to later sends.
  double reorder_probability = 0.0;
  /// Upper bound of the reordering delay. The default (5 ms, 100x the
  /// base latency) inverts ordering against concurrent traffic; chaos
  /// configs raise it past the protocol timeout to force late grants.
  common::Ticks reorder_delay = common::from_millis(5.0);
};

struct NetworkStats {
  std::uint64_t sent = 0;        ///< logical sends (copies not counted)
  std::uint64_t delivered = 0;   ///< handler invocations (copies counted)
  std::uint64_t dropped_loss = 0;        ///< random fabric loss
  std::uint64_t dropped_dead_node = 0;   ///< src or dst failed
  std::uint64_t dropped_partition = 0;   ///< src/dst in different islands
  std::uint64_t dropped_no_endpoint = 0; ///< dst never registered
  std::uint64_t duplicated = 0;          ///< extra copies injected
  std::uint64_t reordered = 0;           ///< copies given a reorder delay
  std::uint64_t node_failures = 0;   ///< alive->failed transitions
  std::uint64_t node_recoveries = 0; ///< failed->alive transitions
  /// Wire-encoded payload bytes across logical sends (duplicated copies
  /// share their original's payload and add nothing), for the telemetry
  /// registry's traffic-volume series.
  std::uint64_t payload_bytes_sent = 0;

  std::uint64_t dropped_total() const {
    return dropped_loss + dropped_dead_node + dropped_partition +
           dropped_no_endpoint;
  }
};

/// Why a message never reached its destination handler. The cluster's
/// drop handler uses this to decide whether the lost watts are merely
/// stranded (loss/partition: the peer is still alive and its view of
/// the ledger intact) or reclaimable against the dead destination.
enum class DropReason : std::uint8_t {
  kLoss,
  kDeadNode,
  kPartition,
  kNoEndpoint,
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;
  using DropHandler = std::function<void(const Message&, DropReason)>;

  Network(sim::Simulator& sim, NetworkConfig config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register (or replace) the delivery handler for `node`.
  void register_endpoint(NodeId node, Handler handler);

  /// Remove an endpoint entirely (distinct from failing it: messages to a
  /// removed endpoint count as dropped_no_endpoint).
  void remove_endpoint(NodeId node);

  /// Send a payload; returns the assigned message id, or 0 if the message
  /// was dropped at send time (dead source). Drops at delivery time (dead
  /// destination, loss, partition) still return a valid id.
  std::uint64_t send(NodeId src, NodeId dst, Payload payload);

  /// --- fault injection -------------------------------------------------

  /// Mark a node failed: it stops receiving, and sends from it are
  /// dropped. Delivery events already in flight to it are dropped on
  /// arrival, matching a crash that loses the NIC. Idempotent: failing
  /// an already-failed node is a no-op (no double-counted transition,
  /// no duplicate log line).
  void fail_node(NodeId node);
  /// Undo fail_node: the node receives and sends again. Idempotent the
  /// same way. Orthogonal to partitions — a node recovered inside a
  /// partition island still only reaches its island until the partition
  /// heals (covered in network_test.cpp).
  void recover_node(NodeId node);
  bool node_alive(NodeId node) const;

  /// Split the network into islands; messages crossing island boundaries
  /// are dropped. Nodes absent from every island communicate freely with
  /// each other (island -1).
  void set_partition(const std::vector<std::vector<NodeId>>& islands);
  void clear_partition();

  /// Observer invoked for every dropped message with the message that
  /// was lost and why (loss, dead node, partition, missing endpoint).
  /// The cluster layer uses this to account for power stranded in lost
  /// grant/donation messages, and the reason to tag dead-node strands
  /// for later reclamation. For a duplicated message the handler fires
  /// at most once — only when the last in-flight copy drops and no copy
  /// was delivered — so watts are never stranded twice (or stranded when
  /// the other copy actually arrived).
  void set_drop_handler(DropHandler handler) {
    drop_handler_ = std::move(handler);
  }

  const NetworkStats& stats() const { return stats_; }
  sim::Simulator& simulator() { return sim_; }

  /// The sampled one-way latency distribution, exposed for tests.
  common::Ticks sample_latency();

  /// Slab high-water mark (slots ever allocated for in-flight copies),
  /// exposed so the zero-allocation check can confirm warm-up converged.
  std::size_t slab_capacity() const { return slab_.size(); }

 private:
  /// Copies still in flight for a duplicated message id; absent for
  /// messages that were never duplicated.
  struct CopyState {
    int outstanding = 0;
    bool any_delivered = false;
  };

  bool same_island(NodeId a, NodeId b) const;
  void deliver(std::uint32_t slot);
  void schedule_copy(const Message& msg);
  common::Ticks sample_copy_delay();

  sim::Simulator& sim_;
  NetworkConfig config_;
  common::Rng rng_;
  DropHandler drop_handler_;
  /// Dense NodeId-indexed tables: node ids are small and contiguous in
  /// every topology the cluster layer builds (clients 0..N-1, server N),
  /// so a vector probe replaces the seed's unordered_map hash+chase on
  /// the per-delivery path. An empty Handler slot means "no endpoint".
  std::vector<Handler> endpoints_;
  std::vector<std::uint8_t> failed_;
  std::vector<std::int32_t> island_of_;
  /// In-flight copies live here; the scheduled delivery event captures
  /// only {this, slot}. Slots are recycled through a free list, so the
  /// slab grows to the in-flight high-water mark and then stays put.
  std::vector<Message> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<std::uint64_t, CopyState> copies_;
  bool partitioned_ = false;
  std::uint64_t next_msg_id_ = 1;
  NetworkStats stats_;
};

}  // namespace penelope::net
