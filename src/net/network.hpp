// Simulated message-passing network on top of the discrete-event engine.
//
// Models the properties the paper's evaluation depends on:
//   * per-message latency with jitter (turnaround-time floors),
//   * random loss (lossy fabric),
//   * node failures (the Figure 3 server-kill experiment),
//   * network partitions (mentioned as a centralized failure mode in §1).
//
// Delivery is a scheduled simulator event that invokes the destination's
// registered handler; the network never reorders equal-latency messages
// (the event queue is FIFO at equal timestamps), and all jitter comes
// from a seeded Rng so runs are reproducible.
//
// Randomness is per source node: each sender owns an independent Rng
// stream (loss/duplicate/reorder/latency draws) and message-id counter,
// both derived only from (config seed, node id). That makes a node's
// draw sequence — and therefore the whole run — independent of how other
// nodes' sends interleave, which is what lets sharded execution keep the
// serial trace bit-identical for any shard count.
//
// Beyond loss, the fabric can inject the two faults a real UDP transport
// exhibits: duplication (an extra delayed copy of the same message id)
// and reordering (a large latency spike that makes an earlier send arrive
// after later ones). Both draw from the sender's stream, and both draw
// nothing when their probability is zero, so existing seeds replay
// bit-identically with the faults disabled.
//
// The send→deliver path performs zero heap allocations in steady state
// (DESIGN.md §11): payloads are a trivially-copyable variant stored
// inline in the Message, node tables are dense vectors indexed by
// NodeId, in-flight messages live in a free-listed slab, and the
// delivery closure ({this, slot}) fits sim::EventFn's inline buffer.
// After warm-up (slab/heap high-water marks reached), sending and
// delivering touch the allocator not at all — pinned by the
// net.zero_alloc ctest case (bench_network --alloc-check).
//
// Sharded mode (DESIGN.md §12): constructed over a sim::ShardedSimulator
// plus a node→shard map, the network stages *every* send — intra- and
// inter-shard — into per-execution-context buffers, and a barrier hook
// flushes them in canonical (arrival time, message id, duplicate) order
// into the destination shards' heaps. Because message ids are per source
// node, the canonical order is independent of the shard layout; because
// every sampled latency is >= the latency floor (== the engine's
// lookahead), every staged arrival lands at or after the window boundary
// that flushes it. Stats, slab, free list, and duplicate tracking are
// per execution context, so windows touch no shared mutable state.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/message.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace penelope::net {

struct LatencyModel {
  /// Fixed one-way latency component.
  common::Ticks base = common::from_millis(0.05);  // 50 us
  /// Gaussian jitter stddev added to base (truncated at >= floor).
  common::Ticks jitter_stddev = common::from_millis(0.01);
  /// Hard lower bound on every one-way latency (including duplicated
  /// copies, before any reorder delay is added). This is the lookahead a
  /// conservative sharded run derives its window width from: no message
  /// can arrive sooner than `floor` after its send. 0 behaves as 1 tick,
  /// the truncation the jitter always had.
  common::Ticks floor = 0;

  common::Ticks effective_floor() const { return floor > 1 ? floor : 1; }
};

struct NetworkConfig {
  LatencyModel latency;
  /// Probability any message is silently lost in the fabric.
  double loss_probability = 0.0;
  std::uint64_t seed = 1;
  /// Probability a message that survived loss/partition is delivered
  /// twice: a second copy (Message::duplicate = true, same id) is
  /// scheduled with its own sampled latency.
  double duplicate_probability = 0.0;
  /// Probability a scheduled copy gets an extra delay drawn uniformly
  /// from [reorder_delay / 2, reorder_delay], inverting its arrival
  /// order relative to later sends.
  double reorder_probability = 0.0;
  /// Upper bound of the reordering delay. The default (5 ms, 100x the
  /// base latency) inverts ordering against concurrent traffic; chaos
  /// configs raise it past the protocol timeout to force late grants.
  common::Ticks reorder_delay = common::from_millis(5.0);
  /// Probability a message is corrupted on the wire: one bit of its
  /// encoded frame is flipped at delivery and the frame must survive
  /// decode_checked (it never does — the checksum catches every
  /// single-bit flip), so the message is dropped and counted. Draws
  /// nothing at zero, like the other fault probabilities.
  double corrupt_probability = 0.0;
};

/// The stochastic fault knobs as one value, so a fault schedule can
/// switch the fabric between calm and hostile regimes mid-run (a
/// "rates burst" is a pair of set_fault_rates events).
struct FaultRates {
  double loss = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;
};

struct NetworkStats {
  std::uint64_t sent = 0;        ///< logical sends (copies not counted)
  std::uint64_t delivered = 0;   ///< handler invocations (copies counted)
  std::uint64_t dropped_loss = 0;        ///< random fabric loss
  std::uint64_t dropped_dead_node = 0;   ///< src or dst failed
  std::uint64_t dropped_partition = 0;   ///< src/dst in different islands
  std::uint64_t dropped_no_endpoint = 0; ///< dst never registered
  std::uint64_t dropped_one_way = 0;     ///< asymmetric (one-way) block
  std::uint64_t dropped_corrupt = 0;     ///< wire corruption, checksum caught
  std::uint64_t duplicated = 0;          ///< extra copies injected
  std::uint64_t reordered = 0;           ///< copies given a reorder delay
  std::uint64_t corrupted = 0;           ///< copies given a wire bit flip
  std::uint64_t burst_delayed = 0;       ///< copies delayed by a latency burst
  std::uint64_t paused_held = 0;         ///< deliveries queued at a paused node
  std::uint64_t node_failures = 0;   ///< alive->failed transitions
  std::uint64_t node_recoveries = 0; ///< failed->alive transitions
  /// Wire-encoded payload bytes across logical sends (duplicated copies
  /// share their original's payload and add nothing), for the telemetry
  /// registry's traffic-volume series.
  std::uint64_t payload_bytes_sent = 0;

  std::uint64_t dropped_total() const {
    return dropped_loss + dropped_dead_node + dropped_partition +
           dropped_no_endpoint + dropped_one_way + dropped_corrupt;
  }
};

/// Why a message never reached its destination handler. The cluster's
/// drop handler uses this to decide whether the lost watts are merely
/// stranded (loss/partition: the peer is still alive and its view of
/// the ledger intact) or reclaimable against the dead destination.
enum class DropReason : std::uint8_t {
  kLoss,
  kDeadNode,
  kPartition,
  kNoEndpoint,
  kOneWay,    ///< asymmetric block: src->dst severed, dst->src intact
  kCorrupt,   ///< frame corrupted on the wire, rejected by decode_checked
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;
  using DropHandler = std::function<void(const Message&, DropReason)>;

  /// Serial mode: deliveries are scheduled directly on `sim`.
  Network(sim::Simulator& sim, NetworkConfig config);

  /// Sharded mode: `shard_of[node]` maps every node the run will ever
  /// address to its shard; sends stage into per-context buffers and a
  /// barrier hook (registered here) flushes them in canonical order.
  Network(sim::ShardedSimulator& engine, NetworkConfig config,
          std::vector<int> shard_of);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register (or replace) the delivery handler for `node`.
  void register_endpoint(NodeId node, Handler handler);

  /// Remove an endpoint entirely (distinct from failing it: messages to a
  /// removed endpoint count as dropped_no_endpoint).
  void remove_endpoint(NodeId node);

  /// Send a payload; returns the assigned message id, or 0 if the message
  /// was dropped at send time (dead source). Drops at delivery time (dead
  /// destination, loss, partition) still return a valid id.
  std::uint64_t send(NodeId src, NodeId dst, Payload payload);

  /// --- fault injection -------------------------------------------------

  /// Mark a node failed: it stops receiving, and sends from it are
  /// dropped. Delivery events already in flight to it are dropped on
  /// arrival, matching a crash that loses the NIC. Idempotent: failing
  /// an already-failed node is a no-op (no double-counted transition,
  /// no duplicate log line). Sharded mode: barrier context only.
  void fail_node(NodeId node);
  /// Undo fail_node: the node receives and sends again. Idempotent the
  /// same way. Orthogonal to partitions — a node recovered inside a
  /// partition island still only reaches its island until the partition
  /// heals (covered in network_test.cpp).
  void recover_node(NodeId node);
  bool node_alive(NodeId node) const;

  /// Split the network into islands; messages crossing island boundaries
  /// are dropped. Nodes absent from every island communicate freely with
  /// each other (island -1). Sharded mode: barrier context only.
  void set_partition(const std::vector<std::vector<NodeId>>& islands);
  void clear_partition();

  /// Asymmetric (one-way) partition: messages from any node in `from`
  /// to any node in `to` are dropped at send time; the reverse
  /// direction is untouched. Replaces any previous one-way block.
  /// Orthogonal to symmetric partitions. Sharded: barrier context only.
  void set_one_way_block(const std::vector<NodeId>& from,
                         const std::vector<NodeId>& to);
  void clear_one_way_block();

  /// Per-link latency burst: every copy sent by `src` while now < until
  /// gets `extra` ticks added on top of its sampled latency (jitter
  /// spike / congested uplink). Adds no Rng draws, so a run with no
  /// bursts armed is bit-identical to one where the feature does not
  /// exist. Sharded: barrier context only.
  void set_latency_burst(NodeId src, common::Ticks extra,
                         common::Ticks until);

  /// Pause a node: a process stall that preserves volatile state.
  /// Deliveries to it queue instead of invoking the handler, and its
  /// own sends are held in the NIC; resume_node replays both sides in
  /// canonical (arrival, id, duplicate) order. Unlike fail_node no
  /// message is dropped and no watts strand. Idempotent. Sharded:
  /// barrier context only.
  void pause_node(NodeId node);
  void resume_node(NodeId node);
  bool node_paused(NodeId node) const;

  /// Swap the stochastic fault knobs (loss/duplicate/reorder/corrupt)
  /// mid-run; a fault schedule uses a pair of these to make a bounded
  /// "hostile weather" window. Sharded: barrier context only.
  void set_fault_rates(const FaultRates& rates);
  FaultRates fault_rates() const;

  /// Observer invoked for every dropped message with the message that
  /// was lost and why (loss, dead node, partition, missing endpoint).
  /// The cluster layer uses this to account for power stranded in lost
  /// grant/donation messages, and the reason to tag dead-node strands
  /// for later reclamation. For a duplicated message the handler fires
  /// at most once — only when the last in-flight copy drops and no copy
  /// was delivered — so watts are never stranded twice (or stranded when
  /// the other copy actually arrived). In sharded mode it runs in the
  /// context that observed the drop (sender's shard for send-time drops,
  /// destination's shard for delivery-time drops), so it must only touch
  /// state that is safe there — the cluster handler writes per-context
  /// metrics slots and atomics only.
  void set_drop_handler(DropHandler handler) {
    drop_handler_ = std::move(handler);
  }

  /// Aggregated statistics. Sharded mode: merged across contexts; call
  /// from a barrier or after the run.
  const NetworkStats& stats() const;
  sim::Simulator& simulator() {
    PEN_CHECK_MSG(sim_ != nullptr, "no serial simulator in sharded mode");
    return *sim_;
  }

  /// The engine lookahead this configuration supports: every one-way
  /// latency sample is >= this.
  common::Ticks lookahead() const {
    return config_.latency.effective_floor();
  }

  /// The sampled one-way latency distribution, exposed for tests. Draws
  /// from `src`'s stream.
  common::Ticks sample_latency(NodeId src = 0);

  /// Slab high-water mark (slots ever allocated for in-flight copies,
  /// summed across contexts), exposed so the zero-allocation check can
  /// confirm warm-up converged.
  std::size_t slab_capacity() const;

  /// Staged-send high-water mark across contexts (0 in serial mode);
  /// the zero-alloc gate checks it converges the same way the slab does.
  std::size_t staging_capacity() const;

 private:
  /// Copies still in flight for a duplicated message id; absent for
  /// messages that were never duplicated.
  struct CopyState {
    int outstanding = 0;
    bool any_delivered = false;
  };

  /// Per-source-node randomness: the draw sequence a node's sends
  /// consume, independent of every other node.
  struct SourceState {
    common::Rng rng;
    std::uint64_t next_msg = 1;
    SourceState() : rng(0) {}
  };

  /// A send waiting for the window barrier (sharded mode only).
  struct StagedSend {
    common::Ticks at = 0;  ///< arrival time
    std::uint8_t tracked = 0;  ///< id has a duplicate-copy tracking entry
    Message msg;
  };

  /// Mutable state owned by one execution context (shard 0..K-1 windows,
  /// or row K for barrier/control/serial). No two contexts ever touch
  /// the same row inside a window; barriers merge on demand.
  struct ContextState {
    NetworkStats stats;
    std::vector<Message> slab;
    std::vector<std::uint32_t> free_slots;
    std::unordered_map<std::uint64_t, CopyState> copies;
    std::vector<StagedSend> staged;
    std::size_t staged_high_water = 0;
  };

  bool same_island(NodeId a, NodeId b) const;
  bool one_way_blocked(NodeId src, NodeId dst) const;
  void deliver(std::size_t ctx, std::uint32_t slot);
  void schedule_copy(ContextState& ctx, const Message& msg,
                     common::Ticks delay, bool tracked);
  common::Ticks sample_copy_delay(SourceState& src, NetworkStats& stats);
  void flush_staged();
  /// Slab-insert + schedule one replayed message (resume path); does for
  /// a single message what flush_staged does for a staged batch.
  void redeliver(const StagedSend& staged, common::Ticks at);
  SourceState& source_state(NodeId src);
  std::size_t context_index() const;
  ContextState& context() { return contexts_[context_index()]; }

  sim::Simulator* sim_ = nullptr;           ///< serial mode
  sim::ShardedSimulator* engine_ = nullptr; ///< sharded mode
  std::vector<int> shard_of_;
  NetworkConfig config_;
  DropHandler drop_handler_;
  /// Dense NodeId-indexed tables: node ids are small and contiguous in
  /// every topology the cluster layer builds (clients 0..N-1, server N),
  /// so a vector probe replaces the seed's unordered_map hash+chase on
  /// the per-delivery path. An empty Handler slot means "no endpoint".
  std::vector<Handler> endpoints_;
  std::vector<std::uint8_t> failed_;
  std::vector<std::int32_t> island_of_;
  /// One-way block membership flags (asymmetric partition). A send is
  /// dropped iff one_way_active_ && asym_from_[src] && asym_to_[dst].
  std::vector<std::uint8_t> asym_from_;
  std::vector<std::uint8_t> asym_to_;
  bool one_way_active_ = false;
  /// Per-source latency bursts: copies sent while now < until get extra
  /// ticks. Zero entries add nothing and draw nothing.
  struct Burst {
    common::Ticks extra = 0;
    common::Ticks until = 0;
  };
  std::vector<Burst> bursts_;
  /// Paused nodes ("process stall"): inbound deliveries and outbound
  /// sends queue here until resume. The inbox row for node n is only
  /// touched by n's delivery context, the outbox row by n's send
  /// context, and pause/resume run at barriers — same ownership rule as
  /// the context rows. Outbox StagedSend.at stores the *sampled delay*
  /// (not an absolute arrival): the message departs at resume.
  std::vector<std::uint8_t> paused_;
  std::vector<std::vector<StagedSend>> paused_inbox_;
  std::vector<std::vector<StagedSend>> paused_outbox_;
  /// Per-source-node streams. Serial mode grows lazily; sharded mode is
  /// pre-sized from shard_of_ so windows never resize it.
  std::vector<SourceState> sources_;
  /// One row per execution context: contexts_[K] doubles as the serial
  /// state (serial mode has exactly one row).
  std::vector<ContextState> contexts_;
  /// Scratch for the canonical flush sort; reaches a high-water mark and
  /// stays allocation-free afterwards.
  std::vector<StagedSend> flush_scratch_;
  mutable NetworkStats merged_stats_;
  bool partitioned_ = false;
};

}  // namespace penelope::net
