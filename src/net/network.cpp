#include "net/network.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "net/codec.hpp"

namespace penelope::net {

namespace {

// Grow a dense NodeId-indexed table so `node` is a valid index.
template <typename T>
void ensure_slot(std::vector<T>& table, NodeId node, const T& fill) {
  if (static_cast<std::size_t>(node) >= table.size())
    table.resize(static_cast<std::size_t>(node) + 1, fill);
}

std::uint64_t source_seed(std::uint64_t seed, NodeId src) {
  std::uint64_t state =
      seed ^ (0x9e3779b97f4a7c15ULL *
              (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) +
               1));
  return common::splitmix64(state);
}

// Message ids carry their source in the high bits: (src+1) << 40 plus a
// per-source counter. Unique across the run, and — the property the
// canonical sharded merge sorts on — totally ordered in a way that does
// not depend on how sends from different nodes interleaved.
std::uint64_t make_msg_id(NodeId src, std::uint64_t counter) {
  return ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) + 1)
          << 40) |
         counter;
}

// Lift a simulator Payload into the wire codec's variant (same
// alternatives minus monostate, which never crosses a wire).
std::optional<WirePayload> wire_payload_of(const Payload& payload) {
  return std::visit(
      [](const auto& m) -> std::optional<WirePayload> {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          return std::nullopt;
        } else {
          return WirePayload{m};
        }
      },
      payload);
}

void accumulate(NetworkStats& into, const NetworkStats& from) {
  into.sent += from.sent;
  into.delivered += from.delivered;
  into.dropped_loss += from.dropped_loss;
  into.dropped_dead_node += from.dropped_dead_node;
  into.dropped_partition += from.dropped_partition;
  into.dropped_no_endpoint += from.dropped_no_endpoint;
  into.dropped_one_way += from.dropped_one_way;
  into.dropped_corrupt += from.dropped_corrupt;
  into.duplicated += from.duplicated;
  into.reordered += from.reordered;
  into.corrupted += from.corrupted;
  into.burst_delayed += from.burst_delayed;
  into.paused_held += from.paused_held;
  into.node_failures += from.node_failures;
  into.node_recoveries += from.node_recoveries;
  into.payload_bytes_sent += from.payload_bytes_sent;
}

}  // namespace

Network::Network(sim::Simulator& sim, NetworkConfig config)
    : sim_(&sim), config_(config) {
  contexts_.resize(1);
}

Network::Network(sim::ShardedSimulator& engine, NetworkConfig config,
                 std::vector<int> shard_of)
    : engine_(&engine), shard_of_(std::move(shard_of)), config_(config) {
  const int shards = engine.shards();
  for (int s : shard_of_) PEN_CHECK(s >= 0 && s < shards);
  PEN_CHECK_MSG(engine.lookahead() <= lookahead(),
                "engine window is wider than the latency floor allows");
  contexts_.resize(static_cast<std::size_t>(shards) + 1);
  // Pre-size every node-indexed table windows read or write, so no
  // window ever resizes shared storage.
  sources_.resize(shard_of_.size());
  for (std::size_t n = 0; n < sources_.size(); ++n) {
    sources_[n].rng = common::Rng(
        source_seed(config_.seed, static_cast<NodeId>(n)));
  }
  failed_.assign(shard_of_.size(), 0);
  asym_from_.assign(shard_of_.size(), 0);
  asym_to_.assign(shard_of_.size(), 0);
  bursts_.assign(shard_of_.size(), Burst{});
  paused_.assign(shard_of_.size(), 0);
  paused_inbox_.resize(shard_of_.size());
  paused_outbox_.resize(shard_of_.size());
  engine_->add_barrier_hook([this] { flush_staged(); });
}

std::size_t Network::context_index() const {
  if (engine_ == nullptr) return 0;
  int ctx = sim::ShardedSimulator::current_shard();
  return ctx >= 0 ? static_cast<std::size_t>(ctx) : contexts_.size() - 1;
}

Network::SourceState& Network::source_state(NodeId src) {
  auto idx = static_cast<std::size_t>(src);
  if (engine_ != nullptr) {
    PEN_CHECK(src >= 0 && idx < sources_.size());
    return sources_[idx];
  }
  if (idx >= sources_.size()) {
    std::size_t old = sources_.size();
    sources_.resize(idx + 1);
    for (std::size_t n = old; n < sources_.size(); ++n) {
      sources_[n].rng = common::Rng(
          source_seed(config_.seed, static_cast<NodeId>(n)));
    }
  }
  return sources_[idx];
}

void Network::register_endpoint(NodeId node, Handler handler) {
  PEN_CHECK(node != kNoNode && node >= 0);
  PEN_CHECK(handler != nullptr);
  ensure_slot(endpoints_, node, Handler{});
  endpoints_[static_cast<std::size_t>(node)] = std::move(handler);
}

void Network::remove_endpoint(NodeId node) {
  if (node >= 0 && static_cast<std::size_t>(node) < endpoints_.size())
    endpoints_[static_cast<std::size_t>(node)] = nullptr;
}

common::Ticks Network::sample_latency(NodeId src) {
  common::Rng& rng = source_state(src).rng;
  double jitter = rng.normal(
      0.0, static_cast<double>(config_.latency.jitter_stddev));
  auto latency = config_.latency.base + static_cast<common::Ticks>(jitter);
  return std::max<common::Ticks>(latency, config_.latency.effective_floor());
}

bool Network::same_island(NodeId a, NodeId b) const {
  if (!partitioned_) return true;
  auto island = [this](NodeId n) -> std::int32_t {
    if (n < 0 || static_cast<std::size_t>(n) >= island_of_.size()) return -1;
    return island_of_[static_cast<std::size_t>(n)];
  };
  return island(a) == island(b);
}

std::uint64_t Network::send(NodeId src, NodeId dst, Payload payload) {
  ContextState& cx = context();
  if (!node_alive(src)) {
    ++cx.stats.dropped_dead_node;
    return 0;
  }
  SourceState& source = source_state(src);
  ++cx.stats.sent;
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.id = make_msg_id(src, source.next_msg++);
  msg.sent_at = engine_ != nullptr ? engine_->context_now() : sim_->now();
  msg.payload = payload;
  cx.stats.payload_bytes_sent += payload_wire_bytes(msg.payload);

  if (source.rng.chance(config_.loss_probability)) {
    ++cx.stats.dropped_loss;
    if (drop_handler_) drop_handler_(msg, DropReason::kLoss);
    return msg.id;
  }
  if (!same_island(src, dst)) {
    ++cx.stats.dropped_partition;
    if (drop_handler_) drop_handler_(msg, DropReason::kPartition);
    return msg.id;
  }
  if (one_way_blocked(src, dst)) {
    ++cx.stats.dropped_one_way;
    if (drop_handler_) drop_handler_(msg, DropReason::kOneWay);
    return msg.id;
  }

  // A paused source's NIC holds every copy; it departs at resume with
  // the delay sampled here (draw sequence is identical either way).
  const bool src_paused = node_paused(src);
  const common::Ticks now = msg.sent_at;
  auto dispatch = [&](const Message& m, common::Ticks delay, bool track) {
    const Burst& burst =
        static_cast<std::size_t>(m.src) < bursts_.size()
            ? bursts_[static_cast<std::size_t>(m.src)]
            : Burst{};
    if (burst.extra > 0 && now < burst.until) {
      delay += burst.extra;
      ++cx.stats.burst_delayed;
    }
    if (src_paused) {
      paused_outbox_[static_cast<std::size_t>(m.src)].push_back(
          StagedSend{delay, static_cast<std::uint8_t>(track), m});
      ++cx.stats.paused_held;
      return;
    }
    schedule_copy(cx, m, delay, track);
  };

  std::uint64_t id = msg.id;
  bool tracked = false;
  if (source.rng.chance(config_.duplicate_probability)) {
    ++cx.stats.duplicated;
    tracked = true;
    if (engine_ == nullptr) cx.copies[id] = CopyState{2, false};
    // The copy shares the original's payload bytes by trivial copy of the
    // inline variant — cheaper than a shared_ptr indirection would be
    // (no allocation, no refcount; measured in BENCH_net.json), and the
    // payload stays immutable because handlers only see `const Message&`.
    Message copy = msg;
    copy.duplicate = true;
    dispatch(copy, sample_copy_delay(source, cx.stats), tracked);
  }
  // Corruption marks the original copy only (a duplicated copy is an
  // independent datagram on a real fabric; one clean copy surviving is
  // exactly the case the copy-tracking drop resolution handles).
  const std::size_t wire_bytes = payload_wire_bytes(msg.payload);
  if (wire_bytes > 0 && source.rng.chance(config_.corrupt_probability)) {
    ++cx.stats.corrupted;
    const auto frame_bits =
        static_cast<std::uint32_t>(8 * (kFrameHeaderBytes + wire_bytes));
    msg.corrupt = 1 + source.rng.next_below(frame_bits);
  }
  dispatch(msg, sample_copy_delay(source, cx.stats), tracked);
  return id;
}

common::Ticks Network::sample_copy_delay(SourceState& source,
                                         NetworkStats& stats) {
  common::Rng& rng = source.rng;
  double jitter = rng.normal(
      0.0, static_cast<double>(config_.latency.jitter_stddev));
  auto latency = config_.latency.base + static_cast<common::Ticks>(jitter);
  common::Ticks delay =
      std::max<common::Ticks>(latency, config_.latency.effective_floor());
  if (rng.chance(config_.reorder_probability)) {
    ++stats.reordered;
    delay += static_cast<common::Ticks>(
        rng.uniform(0.5, 1.0) *
        static_cast<double>(config_.reorder_delay));
  }
  return delay;
}

void Network::schedule_copy(ContextState& cx, const Message& msg,
                            common::Ticks delay, bool tracked) {
  if (engine_ != nullptr) {
    // Stage everything — intra-shard sends too. Delivery order must not
    // depend on the shard layout, and the conservative bound guarantees
    // the arrival is at or past the window boundary that will flush it.
    common::Ticks at = engine_->context_now() + delay;
    cx.staged.push_back(
        StagedSend{at, static_cast<std::uint8_t>(tracked), msg});
    if (cx.staged.size() > cx.staged_high_water)
      cx.staged_high_water = cx.staged.size();
    return;
  }
  std::uint32_t slot;
  if (cx.free_slots.empty()) {
    slot = static_cast<std::uint32_t>(cx.slab.size());
    cx.slab.push_back(msg);
  } else {
    slot = cx.free_slots.back();
    cx.free_slots.pop_back();
    cx.slab[slot] = msg;
  }
  // {this, slot} is 12 bytes — well inside EventFn's inline buffer, so
  // scheduling a delivery allocates nothing once the slab is warm.
  sim_->schedule_after(delay, [this, slot] { deliver(0, slot); });
}

void Network::flush_staged() {
  flush_scratch_.clear();
  for (auto& cx : contexts_) {
    if (cx.staged.empty()) continue;
    flush_scratch_.insert(flush_scratch_.end(), cx.staged.begin(),
                          cx.staged.end());
    cx.staged.clear();
  }
  if (flush_scratch_.empty()) return;
  // Canonical merge order: (arrival, source-ordered message id, original
  // before duplicate). Independent of which context staged what, hence
  // of the shard count — the heart of the K-invariance contract.
  std::sort(flush_scratch_.begin(), flush_scratch_.end(),
            [](const StagedSend& a, const StagedSend& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.msg.id != b.msg.id) return a.msg.id < b.msg.id;
              return a.msg.duplicate < b.msg.duplicate;
            });
  for (const StagedSend& staged : flush_scratch_) {
    int shard = -1;
    if (staged.msg.dst >= 0 &&
        static_cast<std::size_t>(staged.msg.dst) < shard_of_.size())
      shard = shard_of_[static_cast<std::size_t>(staged.msg.dst)];
    std::size_t ctxi = shard >= 0 ? static_cast<std::size_t>(shard)
                                  : contexts_.size() - 1;
    ContextState& cx = contexts_[ctxi];
    std::uint32_t slot;
    if (cx.free_slots.empty()) {
      slot = static_cast<std::uint32_t>(cx.slab.size());
      cx.slab.push_back(staged.msg);
    } else {
      slot = cx.free_slots.back();
      cx.free_slots.pop_back();
      cx.slab[slot] = staged.msg;
    }
    if (staged.tracked != 0) ++cx.copies[staged.msg.id].outstanding;
    sim::Simulator& dst_sim =
        shard >= 0 ? engine_->shard(shard) : engine_->control();
    dst_sim.schedule_at(
        staged.at,
        [this, ctx = static_cast<std::uint32_t>(ctxi), slot] {
          deliver(ctx, slot);
        });
  }
}

void Network::deliver(std::size_t ctxi, std::uint32_t slot) {
  ContextState& cx = contexts_[ctxi];
  // Copy out of the slab before anything else: the handler may send
  // reentrantly, which can grow the slab and invalidate references.
  const Message msg = cx.slab[slot];
  cx.free_slots.push_back(slot);

  // A paused destination queues the frame in its NIC: no drop, no copy
  // resolution — the tracking entry stays live until the replayed
  // delivery resolves it after resume. Runs in dst's context, and the
  // inbox row belongs to dst, so the ownership rule holds.
  if (node_paused(msg.dst)) {
    common::Ticks at =
        engine_ != nullptr ? engine_->context_now() : sim_->now();
    paused_inbox_[static_cast<std::size_t>(msg.dst)].push_back(StagedSend{
        at, static_cast<std::uint8_t>(0), msg});
    ++cx.stats.paused_held;
    return;
  }

  // A duplicated message strands its payload only if every copy is lost;
  // the tracking entry lives until the last copy resolves. The empty()
  // probe keeps the hash lookup off the hot path entirely when
  // duplication is disabled (the common case).
  auto copy_it = cx.copies.empty() ? cx.copies.end() : cx.copies.find(msg.id);
  bool last_copy = true;
  bool other_delivered = false;
  if (copy_it != cx.copies.end()) {
    CopyState& state = copy_it->second;
    --state.outstanding;
    last_copy = state.outstanding == 0;
    other_delivered = state.any_delivered;
  }
  auto resolve_drop = [&](std::uint64_t& counter, DropReason reason) {
    ++counter;
    if (drop_handler_ && last_copy && !other_delivered)
      drop_handler_(msg, reason);
    if (copy_it != cx.copies.end() && last_copy) cx.copies.erase(copy_it);
  };
  if (!node_alive(msg.dst)) {
    resolve_drop(cx.stats.dropped_dead_node, DropReason::kDeadNode);
    return;
  }
  const Handler* handler = nullptr;
  if (msg.dst >= 0 && static_cast<std::size_t>(msg.dst) < endpoints_.size())
    handler = &endpoints_[static_cast<std::size_t>(msg.dst)];
  if (handler == nullptr || !*handler) {
    resolve_drop(cx.stats.dropped_no_endpoint, DropReason::kNoEndpoint);
    return;
  }
  if (msg.corrupt != 0) {
    // Run the real wire: encode the frame the sender would have put on
    // the fabric, flip the drawn bit, and ask the hardened decoder. The
    // FNV-1a frame checksum catches every single-bit flip, so the frame
    // is rejected and dropped here; the decode_checked round-trip (not
    // an assumption) is what this nemesis exists to exercise.
    const std::optional<WirePayload> wire = wire_payload_of(msg.payload);
    if (wire.has_value()) {
      std::vector<std::uint8_t> frame = encode_frame(*wire);
      const std::uint32_t bit = msg.corrupt - 1;
      if (bit / 8 < frame.size()) frame[bit / 8] ^= 1u << (bit % 8);
      CheckedDecode checked = decode_checked(frame.data(), frame.size());
      if (!checked) {
        resolve_drop(cx.stats.dropped_corrupt, DropReason::kCorrupt);
        return;
      }
    }
  }
  if (copy_it != cx.copies.end()) {
    copy_it->second.any_delivered = true;
    if (last_copy) cx.copies.erase(copy_it);
  }
  ++cx.stats.delivered;
  (*handler)(msg);
}

const NetworkStats& Network::stats() const {
  if (contexts_.size() == 1) return contexts_[0].stats;
  merged_stats_ = NetworkStats{};
  for (const auto& cx : contexts_) accumulate(merged_stats_, cx.stats);
  return merged_stats_;
}

std::size_t Network::slab_capacity() const {
  std::size_t total = 0;
  for (const auto& cx : contexts_) total += cx.slab.size();
  return total;
}

std::size_t Network::staging_capacity() const {
  std::size_t total = 0;
  for (const auto& cx : contexts_) total += cx.staged_high_water;
  return total;
}

void Network::fail_node(NodeId node) {
  if (node < 0) return;
  ensure_slot(failed_, node, std::uint8_t{0});
  if (failed_[static_cast<std::size_t>(node)] != 0) return;
  failed_[static_cast<std::size_t>(node)] = 1;
  ++context().stats.node_failures;
  PEN_LOG_INFO("network: node %d failed at t=%.3fs", node,
               common::to_seconds(engine_ != nullptr ? engine_->context_now()
                                                     : sim_->now()));
}

void Network::recover_node(NodeId node) {
  if (node < 0) return;
  ensure_slot(failed_, node, std::uint8_t{0});
  if (failed_[static_cast<std::size_t>(node)] == 0) return;
  failed_[static_cast<std::size_t>(node)] = 0;
  ++context().stats.node_recoveries;
  PEN_LOG_INFO("network: node %d recovered at t=%.3fs", node,
               common::to_seconds(engine_ != nullptr ? engine_->context_now()
                                                     : sim_->now()));
}

bool Network::node_alive(NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= failed_.size())
    return true;
  return failed_[static_cast<std::size_t>(node)] == 0;
}

void Network::set_partition(
    const std::vector<std::vector<NodeId>>& islands) {
  island_of_.clear();
  for (std::size_t i = 0; i < islands.size(); ++i)
    for (NodeId n : islands[i]) {
      if (n < 0) continue;
      ensure_slot(island_of_, n, std::int32_t{-1});
      island_of_[static_cast<std::size_t>(n)] = static_cast<std::int32_t>(i);
    }
  partitioned_ = true;
}

void Network::clear_partition() {
  island_of_.clear();
  partitioned_ = false;
}

bool Network::one_way_blocked(NodeId src, NodeId dst) const {
  if (!one_way_active_) return false;
  auto flagged = [](const std::vector<std::uint8_t>& flags, NodeId n) {
    return n >= 0 && static_cast<std::size_t>(n) < flags.size() &&
           flags[static_cast<std::size_t>(n)] != 0;
  };
  return flagged(asym_from_, src) && flagged(asym_to_, dst);
}

void Network::set_one_way_block(const std::vector<NodeId>& from,
                                const std::vector<NodeId>& to) {
  std::fill(asym_from_.begin(), asym_from_.end(), 0);
  std::fill(asym_to_.begin(), asym_to_.end(), 0);
  for (NodeId n : from) {
    if (n < 0) continue;
    ensure_slot(asym_from_, n, std::uint8_t{0});
    asym_from_[static_cast<std::size_t>(n)] = 1;
  }
  for (NodeId n : to) {
    if (n < 0) continue;
    ensure_slot(asym_to_, n, std::uint8_t{0});
    asym_to_[static_cast<std::size_t>(n)] = 1;
  }
  one_way_active_ = !from.empty() && !to.empty();
  PEN_LOG_INFO("network: one-way block %zu->%zu nodes at t=%.3fs",
               from.size(), to.size(),
               common::to_seconds(engine_ != nullptr
                                      ? engine_->context_now()
                                      : sim_->now()));
}

void Network::clear_one_way_block() {
  std::fill(asym_from_.begin(), asym_from_.end(), 0);
  std::fill(asym_to_.begin(), asym_to_.end(), 0);
  one_way_active_ = false;
}

void Network::set_latency_burst(NodeId src, common::Ticks extra,
                                common::Ticks until) {
  if (src < 0) return;
  ensure_slot(bursts_, src, Burst{});
  bursts_[static_cast<std::size_t>(src)] = Burst{extra, until};
}

void Network::pause_node(NodeId node) {
  if (node < 0) return;
  ensure_slot(paused_, node, std::uint8_t{0});
  if (paused_.size() > paused_inbox_.size()) {
    paused_inbox_.resize(paused_.size());
    paused_outbox_.resize(paused_.size());
  }
  if (paused_[static_cast<std::size_t>(node)] != 0) return;
  paused_[static_cast<std::size_t>(node)] = 1;
  PEN_LOG_INFO("network: node %d paused at t=%.3fs", node,
               common::to_seconds(engine_ != nullptr ? engine_->context_now()
                                                     : sim_->now()));
}

void Network::resume_node(NodeId node) {
  if (!node_paused(node)) return;
  auto idx = static_cast<std::size_t>(node);
  paused_[idx] = 0;
  const common::Ticks now =
      engine_ != nullptr ? engine_->context_now() : sim_->now();
  // Replay both sides in canonical (arrival, id, duplicate) order so the
  // unblocked history is independent of the queueing order. Inbox frames
  // arrive now; outbox frames depart now and arrive after the delay
  // sampled at send time (StagedSend.at stores that delay).
  struct Replay {
    common::Ticks at;
    StagedSend staged;
  };
  std::vector<Replay> replays;
  replays.reserve(paused_inbox_[idx].size() + paused_outbox_[idx].size());
  for (const StagedSend& staged : paused_inbox_[idx])
    replays.push_back(Replay{now, staged});
  for (const StagedSend& staged : paused_outbox_[idx])
    replays.push_back(Replay{now + staged.at, staged});
  paused_inbox_[idx].clear();
  paused_outbox_[idx].clear();
  std::sort(replays.begin(), replays.end(),
            [](const Replay& a, const Replay& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.staged.msg.id != b.staged.msg.id)
                return a.staged.msg.id < b.staged.msg.id;
              return a.staged.msg.duplicate < b.staged.msg.duplicate;
            });
  for (const Replay& replay : replays) redeliver(replay.staged, replay.at);
  PEN_LOG_INFO("network: node %d resumed at t=%.3fs (%zu frames replayed)",
               node, common::to_seconds(now), replays.size());
}

bool Network::node_paused(NodeId node) const {
  return node >= 0 && static_cast<std::size_t>(node) < paused_.size() &&
         paused_[static_cast<std::size_t>(node)] != 0;
}

void Network::redeliver(const StagedSend& staged, common::Ticks at) {
  int shard = -1;
  if (engine_ != nullptr && staged.msg.dst >= 0 &&
      static_cast<std::size_t>(staged.msg.dst) < shard_of_.size())
    shard = shard_of_[static_cast<std::size_t>(staged.msg.dst)];
  const std::size_t ctxi =
      engine_ == nullptr
          ? 0
          : (shard >= 0 ? static_cast<std::size_t>(shard)
                        : contexts_.size() - 1);
  ContextState& cx = contexts_[ctxi];
  std::uint32_t slot;
  if (cx.free_slots.empty()) {
    slot = static_cast<std::uint32_t>(cx.slab.size());
    cx.slab.push_back(staged.msg);
  } else {
    slot = cx.free_slots.back();
    cx.free_slots.pop_back();
    cx.slab[slot] = staged.msg;
  }
  // Serial sends create their duplicate-tracking entry at send time;
  // sharded sends create it at flush — a held outbox frame skipped that
  // flush, so the increment happens here instead.
  if (engine_ != nullptr && staged.tracked != 0)
    ++cx.copies[staged.msg.id].outstanding;
  sim::Simulator& dst_sim =
      engine_ == nullptr
          ? *sim_
          : (shard >= 0 ? engine_->shard(shard) : engine_->control());
  dst_sim.schedule_at(at,
                      [this, ctx = static_cast<std::uint32_t>(ctxi), slot] {
                        deliver(ctx, slot);
                      });
}

void Network::set_fault_rates(const FaultRates& rates) {
  config_.loss_probability = rates.loss;
  config_.duplicate_probability = rates.duplicate;
  config_.reorder_probability = rates.reorder;
  config_.corrupt_probability = rates.corrupt;
}

FaultRates Network::fault_rates() const {
  return FaultRates{config_.loss_probability,
                    config_.duplicate_probability,
                    config_.reorder_probability,
                    config_.corrupt_probability};
}

}  // namespace penelope::net
