#include "net/network.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace penelope::net {

Network::Network(sim::Simulator& sim, NetworkConfig config)
    : sim_(sim), config_(config), rng_(config.seed) {}

void Network::register_endpoint(NodeId node, Handler handler) {
  PEN_CHECK(node != kNoNode);
  PEN_CHECK(handler != nullptr);
  endpoints_[node] = std::move(handler);
}

void Network::remove_endpoint(NodeId node) { endpoints_.erase(node); }

common::Ticks Network::sample_latency() {
  double jitter = rng_.normal(
      0.0, static_cast<double>(config_.latency.jitter_stddev));
  auto latency = config_.latency.base + static_cast<common::Ticks>(jitter);
  return std::max<common::Ticks>(latency, 1);
}

bool Network::same_island(NodeId a, NodeId b) const {
  if (!partitioned_) return true;
  auto island = [this](NodeId n) {
    auto it = island_of_.find(n);
    return it == island_of_.end() ? -1 : it->second;
  };
  return island(a) == island(b);
}

std::uint64_t Network::send(NodeId src, NodeId dst, std::any payload) {
  if (!node_alive(src)) {
    ++stats_.dropped_dead_node;
    return 0;
  }
  ++stats_.sent;
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.id = next_msg_id_++;
  msg.sent_at = sim_.now();
  msg.payload = std::move(payload);

  if (rng_.chance(config_.loss_probability)) {
    ++stats_.dropped_loss;
    if (drop_handler_) drop_handler_(msg);
    return msg.id;
  }
  if (!same_island(src, dst)) {
    ++stats_.dropped_partition;
    if (drop_handler_) drop_handler_(msg);
    return msg.id;
  }

  std::uint64_t id = msg.id;
  sim_.schedule_after(sample_latency(),
                      [this, m = std::move(msg)]() mutable {
                        deliver(std::move(m));
                      });
  return id;
}

void Network::deliver(Message msg) {
  if (!node_alive(msg.dst)) {
    ++stats_.dropped_dead_node;
    if (drop_handler_) drop_handler_(msg);
    return;
  }
  auto it = endpoints_.find(msg.dst);
  if (it == endpoints_.end()) {
    ++stats_.dropped_no_endpoint;
    if (drop_handler_) drop_handler_(msg);
    return;
  }
  ++stats_.delivered;
  it->second(msg);
}

void Network::fail_node(NodeId node) {
  failed_[node] = true;
  PEN_LOG_INFO("network: node %d failed at t=%.3fs", node,
               common::to_seconds(sim_.now()));
}

void Network::restore_node(NodeId node) {
  failed_[node] = false;
  PEN_LOG_INFO("network: node %d restored at t=%.3fs", node,
               common::to_seconds(sim_.now()));
}

bool Network::node_alive(NodeId node) const {
  auto it = failed_.find(node);
  return it == failed_.end() || !it->second;
}

void Network::set_partition(
    const std::vector<std::vector<NodeId>>& islands) {
  island_of_.clear();
  for (std::size_t i = 0; i < islands.size(); ++i)
    for (NodeId n : islands[i]) island_of_[n] = static_cast<int>(i);
  partitioned_ = true;
}

void Network::clear_partition() {
  island_of_.clear();
  partitioned_ = false;
}

}  // namespace penelope::net
