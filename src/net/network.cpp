#include "net/network.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "net/codec.hpp"

namespace penelope::net {

namespace {

// Grow a dense NodeId-indexed table so `node` is a valid index.
template <typename T>
void ensure_slot(std::vector<T>& table, NodeId node, const T& fill) {
  if (static_cast<std::size_t>(node) >= table.size())
    table.resize(static_cast<std::size_t>(node) + 1, fill);
}

}  // namespace

Network::Network(sim::Simulator& sim, NetworkConfig config)
    : sim_(sim), config_(config), rng_(config.seed) {}

void Network::register_endpoint(NodeId node, Handler handler) {
  PEN_CHECK(node != kNoNode && node >= 0);
  PEN_CHECK(handler != nullptr);
  ensure_slot(endpoints_, node, Handler{});
  endpoints_[static_cast<std::size_t>(node)] = std::move(handler);
}

void Network::remove_endpoint(NodeId node) {
  if (node >= 0 && static_cast<std::size_t>(node) < endpoints_.size())
    endpoints_[static_cast<std::size_t>(node)] = nullptr;
}

common::Ticks Network::sample_latency() {
  double jitter = rng_.normal(
      0.0, static_cast<double>(config_.latency.jitter_stddev));
  auto latency = config_.latency.base + static_cast<common::Ticks>(jitter);
  return std::max<common::Ticks>(latency, 1);
}

bool Network::same_island(NodeId a, NodeId b) const {
  if (!partitioned_) return true;
  auto island = [this](NodeId n) -> std::int32_t {
    if (n < 0 || static_cast<std::size_t>(n) >= island_of_.size()) return -1;
    return island_of_[static_cast<std::size_t>(n)];
  };
  return island(a) == island(b);
}

std::uint64_t Network::send(NodeId src, NodeId dst, Payload payload) {
  if (!node_alive(src)) {
    ++stats_.dropped_dead_node;
    return 0;
  }
  ++stats_.sent;
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.id = next_msg_id_++;
  msg.sent_at = sim_.now();
  msg.payload = payload;
  stats_.payload_bytes_sent += payload_wire_bytes(msg.payload);

  if (rng_.chance(config_.loss_probability)) {
    ++stats_.dropped_loss;
    if (drop_handler_) drop_handler_(msg, DropReason::kLoss);
    return msg.id;
  }
  if (!same_island(src, dst)) {
    ++stats_.dropped_partition;
    if (drop_handler_) drop_handler_(msg, DropReason::kPartition);
    return msg.id;
  }

  std::uint64_t id = msg.id;
  if (rng_.chance(config_.duplicate_probability)) {
    ++stats_.duplicated;
    copies_[id] = CopyState{2, false};
    // The copy shares the original's payload bytes by trivial copy of the
    // inline variant — cheaper than a shared_ptr indirection would be
    // (no allocation, no refcount; measured in BENCH_net.json), and the
    // payload stays immutable because handlers only see `const Message&`.
    Message copy = msg;
    copy.duplicate = true;
    schedule_copy(copy);
  }
  schedule_copy(msg);
  return id;
}

common::Ticks Network::sample_copy_delay() {
  common::Ticks delay = sample_latency();
  if (rng_.chance(config_.reorder_probability)) {
    ++stats_.reordered;
    delay += static_cast<common::Ticks>(
        rng_.uniform(0.5, 1.0) *
        static_cast<double>(config_.reorder_delay));
  }
  return delay;
}

void Network::schedule_copy(const Message& msg) {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(msg);
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot] = msg;
  }
  // {this, slot} is 12 bytes — well inside EventFn's inline buffer, so
  // scheduling a delivery allocates nothing once the slab is warm.
  sim_.schedule_after(sample_copy_delay(), [this, slot] { deliver(slot); });
}

void Network::deliver(std::uint32_t slot) {
  // Copy out of the slab before anything else: the handler may send
  // reentrantly, which can grow the slab and invalidate references.
  const Message msg = slab_[slot];
  free_slots_.push_back(slot);

  // A duplicated message strands its payload only if every copy is lost;
  // the tracking entry lives until the last copy resolves. The empty()
  // probe keeps the hash lookup off the hot path entirely when
  // duplication is disabled (the common case).
  auto copy_it = copies_.empty() ? copies_.end() : copies_.find(msg.id);
  bool last_copy = true;
  bool other_delivered = false;
  if (copy_it != copies_.end()) {
    CopyState& state = copy_it->second;
    --state.outstanding;
    last_copy = state.outstanding == 0;
    other_delivered = state.any_delivered;
  }
  auto resolve_drop = [&](std::uint64_t& counter, DropReason reason) {
    ++counter;
    if (drop_handler_ && last_copy && !other_delivered)
      drop_handler_(msg, reason);
    if (copy_it != copies_.end() && last_copy) copies_.erase(copy_it);
  };
  if (!node_alive(msg.dst)) {
    resolve_drop(stats_.dropped_dead_node, DropReason::kDeadNode);
    return;
  }
  const Handler* handler = nullptr;
  if (msg.dst >= 0 && static_cast<std::size_t>(msg.dst) < endpoints_.size())
    handler = &endpoints_[static_cast<std::size_t>(msg.dst)];
  if (handler == nullptr || !*handler) {
    resolve_drop(stats_.dropped_no_endpoint, DropReason::kNoEndpoint);
    return;
  }
  if (copy_it != copies_.end()) {
    copy_it->second.any_delivered = true;
    if (last_copy) copies_.erase(copy_it);
  }
  ++stats_.delivered;
  (*handler)(msg);
}

void Network::fail_node(NodeId node) {
  if (node < 0) return;
  ensure_slot(failed_, node, std::uint8_t{0});
  if (failed_[static_cast<std::size_t>(node)] != 0) return;
  failed_[static_cast<std::size_t>(node)] = 1;
  ++stats_.node_failures;
  PEN_LOG_INFO("network: node %d failed at t=%.3fs", node,
               common::to_seconds(sim_.now()));
}

void Network::recover_node(NodeId node) {
  if (node < 0) return;
  ensure_slot(failed_, node, std::uint8_t{0});
  if (failed_[static_cast<std::size_t>(node)] == 0) return;
  failed_[static_cast<std::size_t>(node)] = 0;
  ++stats_.node_recoveries;
  PEN_LOG_INFO("network: node %d recovered at t=%.3fs", node,
               common::to_seconds(sim_.now()));
}

bool Network::node_alive(NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= failed_.size())
    return true;
  return failed_[static_cast<std::size_t>(node)] == 0;
}

void Network::set_partition(
    const std::vector<std::vector<NodeId>>& islands) {
  island_of_.clear();
  for (std::size_t i = 0; i < islands.size(); ++i)
    for (NodeId n : islands[i]) {
      if (n < 0) continue;
      ensure_slot(island_of_, n, std::int32_t{-1});
      island_of_[static_cast<std::size_t>(n)] = static_cast<std::int32_t>(i);
    }
  partitioned_ = true;
}

void Network::clear_partition() {
  island_of_.clear();
  partitioned_ = false;
}

}  // namespace penelope::net
