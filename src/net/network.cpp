#include "net/network.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace penelope::net {

Network::Network(sim::Simulator& sim, NetworkConfig config)
    : sim_(sim), config_(config), rng_(config.seed) {}

void Network::register_endpoint(NodeId node, Handler handler) {
  PEN_CHECK(node != kNoNode);
  PEN_CHECK(handler != nullptr);
  endpoints_[node] = std::move(handler);
}

void Network::remove_endpoint(NodeId node) { endpoints_.erase(node); }

common::Ticks Network::sample_latency() {
  double jitter = rng_.normal(
      0.0, static_cast<double>(config_.latency.jitter_stddev));
  auto latency = config_.latency.base + static_cast<common::Ticks>(jitter);
  return std::max<common::Ticks>(latency, 1);
}

bool Network::same_island(NodeId a, NodeId b) const {
  if (!partitioned_) return true;
  auto island = [this](NodeId n) {
    auto it = island_of_.find(n);
    return it == island_of_.end() ? -1 : it->second;
  };
  return island(a) == island(b);
}

std::uint64_t Network::send(NodeId src, NodeId dst, std::any payload) {
  if (!node_alive(src)) {
    ++stats_.dropped_dead_node;
    return 0;
  }
  ++stats_.sent;
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.id = next_msg_id_++;
  msg.sent_at = sim_.now();
  msg.payload = std::move(payload);

  if (rng_.chance(config_.loss_probability)) {
    ++stats_.dropped_loss;
    if (drop_handler_) drop_handler_(msg);
    return msg.id;
  }
  if (!same_island(src, dst)) {
    ++stats_.dropped_partition;
    if (drop_handler_) drop_handler_(msg);
    return msg.id;
  }

  std::uint64_t id = msg.id;
  if (rng_.chance(config_.duplicate_probability)) {
    ++stats_.duplicated;
    copies_[id] = CopyState{2, false};
    Message copy = msg;
    copy.duplicate = true;
    schedule_copy(std::move(copy));
  }
  schedule_copy(std::move(msg));
  return id;
}

common::Ticks Network::sample_copy_delay() {
  common::Ticks delay = sample_latency();
  if (rng_.chance(config_.reorder_probability)) {
    ++stats_.reordered;
    delay += static_cast<common::Ticks>(
        rng_.uniform(0.5, 1.0) *
        static_cast<double>(config_.reorder_delay));
  }
  return delay;
}

void Network::schedule_copy(Message msg) {
  sim_.schedule_after(sample_copy_delay(),
                      [this, m = std::move(msg)]() mutable {
                        deliver(std::move(m));
                      });
}

void Network::deliver(Message msg) {
  // A duplicated message strands its payload only if every copy is lost;
  // the tracking entry lives until the last copy resolves.
  auto copy_it = copies_.find(msg.id);
  bool last_copy = true;
  bool other_delivered = false;
  if (copy_it != copies_.end()) {
    CopyState& state = copy_it->second;
    --state.outstanding;
    last_copy = state.outstanding == 0;
    other_delivered = state.any_delivered;
  }
  auto resolve_drop = [&](std::uint64_t& counter) {
    ++counter;
    if (drop_handler_ && last_copy && !other_delivered)
      drop_handler_(msg);
    if (copy_it != copies_.end() && last_copy) copies_.erase(copy_it);
  };
  if (!node_alive(msg.dst)) {
    resolve_drop(stats_.dropped_dead_node);
    return;
  }
  auto it = endpoints_.find(msg.dst);
  if (it == endpoints_.end()) {
    resolve_drop(stats_.dropped_no_endpoint);
    return;
  }
  if (copy_it != copies_.end()) {
    copy_it->second.any_delivered = true;
    if (last_copy) copies_.erase(copy_it);
  }
  ++stats_.delivered;
  it->second(msg);
}

void Network::fail_node(NodeId node) {
  failed_[node] = true;
  PEN_LOG_INFO("network: node %d failed at t=%.3fs", node,
               common::to_seconds(sim_.now()));
}

void Network::restore_node(NodeId node) {
  failed_[node] = false;
  PEN_LOG_INFO("network: node %d restored at t=%.3fs", node,
               common::to_seconds(sim_.now()));
}

bool Network::node_alive(NodeId node) const {
  auto it = failed_.find(node);
  return it == failed_.end() || !it->second;
}

void Network::set_partition(
    const std::vector<std::vector<NodeId>>& islands) {
  island_of_.clear();
  for (std::size_t i = 0; i < islands.size(); ++i)
    for (NodeId n : islands[i]) island_of_[n] = static_cast<int>(i);
  partitioned_ = true;
}

void Network::clear_partition() {
  island_of_.clear();
  partitioned_ = false;
}

}  // namespace penelope::net
