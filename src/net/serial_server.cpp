#include "net/serial_server.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace penelope::net {

SerialServer::SerialServer(sim::Simulator& sim, SerialServerConfig config,
                           Handler handler)
    : sim_(sim),
      config_(config),
      handler_(std::move(handler)),
      rng_(config.seed) {
  PEN_CHECK(handler_ != nullptr);
  PEN_CHECK(config_.service_min >= 0);
  PEN_CHECK(config_.service_max >= config_.service_min);
  PEN_CHECK(config_.queue_capacity > 0);
}

void SerialServer::inbox(const Message& msg) {
  if (halted_) {
    if (drop_handler_) drop_handler_(msg);
    return;
  }
  if (queue_.size() >= config_.queue_capacity) {
    ++stats_.dropped_overflow;
    if (drop_handler_) drop_handler_(msg);
    return;
  }
  ++stats_.accepted;
  queue_.push_back(Pending{msg, sim_.now()});
  stats_.peak_queue_depth =
      std::max<std::uint64_t>(stats_.peak_queue_depth, queue_.size());
  maybe_start_service();
}

void SerialServer::halt() {
  halted_ = true;
  if (drop_handler_) {
    for (const auto& pending : queue_) drop_handler_(pending.msg);
  }
  queue_.clear();
}

void SerialServer::resume() {
  halted_ = false;
  maybe_start_service();
}

void SerialServer::maybe_start_service() {
  if (busy_ || halted_ || queue_.empty()) return;
  busy_ = true;

  Pending item = std::move(queue_.front());
  queue_.pop_front();
  stats_.total_queue_wait += sim_.now() - item.enqueued_at;

  common::Ticks service =
      config_.service_min +
      static_cast<common::Ticks>(rng_.next_below(static_cast<std::uint32_t>(
          config_.service_max - config_.service_min + 1)));
  stats_.total_service_time += service;

  // The handler runs when service *completes*; the server is occupied for
  // the whole interval, which is what creates the queueing backlog.
  sim_.schedule_after(service, [this, m = std::move(item.msg)]() mutable {
    busy_ = false;
    if (!halted_) {
      ++stats_.processed;
      handler_(m);
    }
    maybe_start_service();
  });
}

}  // namespace penelope::net
