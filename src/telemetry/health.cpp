#include "telemetry/health.hpp"

#include <cstdio>

namespace penelope::telemetry {

void HealthMonitor::configure(double epsilon, std::size_t reserve) {
  epsilon_ = epsilon;
  probes_.reserve(reserve);
}

double HealthMonitor::jain_index(std::uint64_t n, double sum,
                                 double sq_sum) {
  if (n == 0 || sq_sum <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sq_sum);
}

void HealthMonitor::observe(const HealthSample& s) {
  HealthProbe p;
  p.at = s.at;
  p.active_nodes = s.active_nodes;
  p.jain = jain_index(s.active_nodes, s.delivered_sum, s.delivered_sq_sum);
  p.spread_watts =
      s.active_nodes == 0 ? 0.0 : s.delivered_max - s.delivered_min;
  p.delivered_watts = s.delivered_sum;
  p.conservation_drift = s.conservation_error;
  p.energy_joules = s.energy_joules;
  if (have_prev_ && s.at > prev_.at) {
    double dt = common::to_seconds(s.at - prev_.at);
    p.stranded_rate_wps = (s.stranded_watts - prev_.stranded_watts) / dt;
    p.suspicion_rate_hz =
        static_cast<double>(s.suspicions - prev_.suspicions) / dt;
  }
  probes_.push_back(p);
  prev_ = s;
  have_prev_ = true;
}

double HealthMonitor::min_jain_since(common::Ticks after) const {
  double lo = 1.0;
  for (const HealthProbe& p : probes_) {
    if (p.at >= after && p.jain < lo) lo = p.jain;
  }
  return lo;
}

std::optional<double> HealthMonitor::convergence_seconds(
    common::Ticks disturbance) const {
  double threshold = 1.0 - epsilon_;
  bool any = false;
  bool dipped = false;
  for (const HealthProbe& p : probes_) {
    if (p.at < disturbance) continue;
    any = true;
    if (p.jain < threshold) {
      dipped = true;
    } else if (dipped) {
      return common::to_seconds(p.at - disturbance);
    }
  }
  if (!any) return std::nullopt;
  if (!dipped) return 0.0;  // never left the converged band
  return std::nullopt;      // dipped and never recovered
}

std::string HealthMonitor::to_csv() const {
  std::string out =
      "t_s,active,jain,spread_w,delivered_w,stranded_wps,"
      "suspicions_hz,conservation_drift,energy_j\n";
  char line[256];
  for (const HealthProbe& p : probes_) {
    std::snprintf(line, sizeof line,
                  "%.6f,%llu,%.9f,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n",
                  common::to_seconds(p.at),
                  static_cast<unsigned long long>(p.active_nodes), p.jain,
                  p.spread_watts, p.delivered_watts, p.stranded_rate_wps,
                  p.suspicion_rate_hz, p.conservation_drift,
                  p.energy_joules);
    out += line;
  }
  return out;
}

}  // namespace penelope::telemetry
