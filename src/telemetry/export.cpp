#include "telemetry/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>

namespace penelope::telemetry {

namespace {

/// Prometheus renders integers without a decimal point; everything else
/// gets shortest-round-trip-ish %g.
std::string format_value(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

/// Escape a Prometheus label value: backslash, double quote, newline.
std::string prom_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Render `{k="v",...}` (empty string for no labels). `extra` appends one
/// more pair, used for histogram `le`.
std::string prom_labels(const Labels& labels, const std::string& extra_key,
                        const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += prom_escape(v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

const char* prom_type_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

/// Terminal strand-ish kinds also rendered as instant markers.
bool is_instant_marker(TxnEventKind kind) {
  return kind == TxnEventKind::kStranded ||
         kind == TxnEventKind::kDuplicateDropped ||
         kind == TxnEventKind::kUnknownTxn;
}

}  // namespace

std::string to_prometheus_text(const std::vector<MetricSample>& samples) {
  std::vector<const MetricSample*> sorted;
  sorted.reserve(samples.size());
  for (const auto& sample : samples) sorted.push_back(&sample);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const MetricSample* a, const MetricSample* b) {
                     if (a->name != b->name) return a->name < b->name;
                     return a->labels < b->labels;
                   });

  std::string out;
  out.reserve(sorted.size() * 64);
  const MetricSample* prev = nullptr;
  for (const MetricSample* sample : sorted) {
    // Merged snapshots (e.g. one registry per UDP node) may repeat a
    // series; keep the first occurrence so output has no duplicates.
    if (prev != nullptr && prev->name == sample->name &&
        prev->labels == sample->labels) {
      continue;
    }
    if (prev == nullptr || prev->name != sample->name) {
      if (!sample->help.empty()) {
        out += "# HELP ";
        out += sample->name;
        out += ' ';
        out += prom_escape(sample->help);
        out += '\n';
      }
      out += "# TYPE ";
      out += sample->name;
      out += ' ';
      out += prom_type_name(sample->kind);
      out += '\n';
    }
    prev = sample;

    if (sample->kind == MetricKind::kHistogram && sample->histogram) {
      const HistogramSnapshot& hist = *sample->histogram;
      // Cumulative buckets. Underflow (samples below the first bound)
      // belongs in every bucket; overflow only in +Inf.
      std::uint64_t running = hist.underflow;
      for (std::size_t i = 0; i < hist.upper_bounds.size(); ++i) {
        running += hist.counts[i];
        out += sample->name;
        out += "_bucket";
        out += prom_labels(sample->labels, "le",
                           format_value(hist.upper_bounds[i]));
        out += ' ';
        out += format_value(static_cast<double>(running));
        out += '\n';
      }
      out += sample->name;
      out += "_bucket";
      out += prom_labels(sample->labels, "le", "+Inf");
      out += ' ';
      out += format_value(static_cast<double>(hist.total));
      out += '\n';
      out += sample->name;
      out += "_sum";
      out += prom_labels(sample->labels, "", "");
      out += ' ';
      out += format_value(hist.sum);
      out += '\n';
      out += sample->name;
      out += "_count";
      out += prom_labels(sample->labels, "", "");
      out += ' ';
      out += format_value(static_cast<double>(hist.total));
      out += '\n';
    } else {
      out += sample->name;
      out += prom_labels(sample->labels, "", "");
      out += ' ';
      out += format_value(sample->value);
      out += '\n';
    }
  }
  return out;
}

namespace {

const char* flow_hop_name(FlowHopKind kind) {
  switch (kind) {
    case FlowHopKind::kSource: return "source";
    case FlowHopKind::kStep: return "step";
    case FlowHopKind::kSink: return "sink";
  }
  return "??";
}

}  // namespace

std::string to_perfetto_json(const std::vector<TxnRecord>& events,
                             const std::vector<CounterTrack>& tracks,
                             const std::vector<FlowHop>& flows) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&out, &first](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += event;
  };

  // Group the journal by transaction, preserving record order within
  // each group (the recorder emits oldest-to-newest).
  std::map<std::uint64_t, std::vector<const TxnRecord*>> by_txn;
  std::vector<std::int32_t> nodes_seen;
  for (const auto& record : events) {
    by_txn[record.txn_id].push_back(&record);
    if (record.node >= 0 &&
        std::find(nodes_seen.begin(), nodes_seen.end(), record.node) ==
            nodes_seen.end()) {
      nodes_seen.push_back(record.node);
    }
  }

  // Track naming: pid 0 = transactions (tid = node id), pid 1 = counter
  // tracks. Metadata events give the tracks readable names.
  std::sort(nodes_seen.begin(), nodes_seen.end());
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
       "\"args\":{\"name\":\"power transactions\"}}");
  for (std::int32_t node : nodes_seen) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"name\":\"node %d\"}}",
                  node, node);
    emit(buf);
  }

  for (const auto& [txn_id, records] : by_txn) {
    const TxnRecord& head = *records.front();
    const TxnRecord& tail = *records.back();
    common::Ticks start = head.at;
    common::Ticks end = tail.at;
    for (const TxnRecord* record : records) {
      start = std::min(start, record->at);
      end = std::max(end, record->at);
    }

    // One span per transaction with at least two hops; the hop journal
    // rides in args so a click in the UI shows the full lifecycle.
    if (txn_id != 0 && records.size() > 1) {
      char header[256];
      std::snprintf(
          header, sizeof(header),
          "{\"name\":\"txn %" PRIu64 " (%s)\",\"cat\":\"txn\","
          "\"ph\":\"X\",\"ts\":%" PRId64 ",\"dur\":%" PRId64
          ",\"pid\":0,\"tid\":%d,\"args\":{\"txn_id\":%" PRIu64
          ",\"hops\":[",
          txn_id, txn_event_name(tail.kind), static_cast<std::int64_t>(start),
          static_cast<std::int64_t>(end - start), head.node, txn_id);
      std::string span = header;
      bool first_hop = true;
      for (const TxnRecord* record : records) {
        if (!first_hop) span += ',';
        first_hop = false;
        span += "{\"ts\":";
        span += json_number(static_cast<double>(record->at));
        span += ",\"event\":\"";
        span += txn_event_name(record->kind);
        span += "\",\"node\":";
        span += std::to_string(record->node);
        span += ",\"peer\":";
        span += std::to_string(record->peer);
        span += ",\"watts\":";
        span += json_number(record->watts);
        span += '}';
      }
      span += "]}}";
      emit(span);
    }

    for (const TxnRecord* record : records) {
      if (!is_instant_marker(record->kind)) continue;
      char buf[288];
      std::snprintf(
          buf, sizeof(buf),
          "{\"name\":\"%s\",\"cat\":\"txn\",\"ph\":\"i\",\"ts\":%" PRId64
          ",\"pid\":0,\"tid\":%d,\"s\":\"t\",\"args\":{\"txn_id\":%" PRIu64
          ",\"peer\":%d,\"watts\":%.17g}}",
          txn_event_name(record->kind),
          static_cast<std::int64_t>(record->at), record->node,
          record->txn_id, record->peer, record->watts);
      emit(buf);
    }
  }

  if (!tracks.empty()) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"counters\"}}");
  }
  for (const CounterTrack& track : tracks) {
    std::string name = json_escape(track.name);
    for (const auto& [at, value] : track.points) {
      std::string event = "{\"name\":\"";
      event += name;
      event += "\",\"ph\":\"C\",\"ts\":";
      event += std::to_string(static_cast<std::int64_t>(at));
      event += ",\"pid\":1,\"args\":{\"value\":";
      event += json_number(value);
      event += "}}";
      emit(event);
    }
  }

  // Power flows: pid 2, tid = observing endpoint. Flow events ("s"/"t"/
  // "f") must anchor to an enclosing slice on the same track at the
  // same ts, so every hop first becomes a 1 µs "X" slice.
  if (!flows.empty()) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
         "\"args\":{\"name\":\"power flows\"}}");
    std::map<std::uint64_t, std::vector<const FlowHop*>> by_flow;
    for (const FlowHop& hop : flows) {
      char buf[288];
      std::snprintf(
          buf, sizeof(buf),
          "{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"X\",\"ts\":%" PRId64
          ",\"dur\":1,\"pid\":2,\"tid\":%d,\"args\":{\"flow\":%" PRIu64
          ",\"kind\":\"%s\",\"peer\":%d,\"watts\":%.17g}}",
          hop.label, static_cast<std::int64_t>(hop.at), hop.node,
          hop.flow, flow_hop_name(hop.kind), hop.peer, hop.watts);
      emit(buf);
      if (hop.flow != 0) by_flow[hop.flow].push_back(&hop);
    }
    for (auto& [flow_id, hops] : by_flow) {
      if (hops.size() < 2) continue;  // an arrow needs two ends
      std::stable_sort(hops.begin(), hops.end(),
                       [](const FlowHop* a, const FlowHop* b) {
                         return a->at < b->at;
                       });
      for (std::size_t i = 0; i < hops.size(); ++i) {
        const FlowHop& hop = *hops[i];
        const char* phase =
            i == 0 ? "s" : (i + 1 == hops.size() ? "f" : "t");
        char buf[224];
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\":\"flow %" PRIu64 "\",\"cat\":\"flow\",\"ph\":"
            "\"%s\",\"id\":%" PRIu64 ",\"ts\":%" PRId64
            ",\"pid\":2,\"tid\":%d%s}",
            flow_id, phase, flow_id, static_cast<std::int64_t>(hop.at),
            hop.node, i + 1 == hops.size() ? ",\"bp\":\"e\"" : "");
        emit(buf);
      }
    }
  }

  out += "\n]}\n";
  return out;
}

}  // namespace penelope::telemetry
