// Deterministic sim-time windowed series — the "how did we get here"
// companion to MetricsRegistry's "where are we now" snapshots. A series
// aggregates samples into fixed-width windows (sum/min/max/count/last)
// and keeps at most `capacity` windows: when the ring fills, adjacent
// windows are merged in place and the window width doubles, so a series
// covers an arbitrarily long run in O(capacity) memory with uniformly
// degrading resolution (the classic downsampling ring).
//
// Samples must arrive in non-decreasing sim time (the cluster sampler
// runs on the control plane, so this holds by construction). All state
// is plain — sampling happens at sharded-simulator barriers or on the
// serial engine's event loop, never concurrently — which keeps the hot
// path allocation-free after construction (windows are reserved up
// front; see telemetry.ZeroOverheadGate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace penelope::telemetry {

/// Aggregate of every sample that landed in [start, start + width).
struct SeriesWindow {
  common::Ticks start = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;  // most recent sample in the window
  std::uint64_t count = 0;

  double avg() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

class TimeSeries {
 public:
  /// `window` is the initial window width in ticks (> 0); `capacity` is
  /// the maximum retained window count (>= 2) before downsampling
  /// doubles the width.
  TimeSeries(std::string name, common::Ticks window, std::size_t capacity);

  void sample(common::Ticks at, double value);

  const std::string& name() const { return name_; }
  const std::vector<SeriesWindow>& windows() const { return windows_; }
  /// Current window width; starts at the configured width and doubles
  /// on every downsample pass.
  common::Ticks window_width() const { return window_; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_samples() const { return total_samples_; }

 private:
  bool merge_into_tail(common::Ticks start, double value);
  void downsample();

  std::string name_;
  common::Ticks window_;
  std::size_t capacity_;
  std::vector<SeriesWindow> windows_;
  std::uint64_t total_samples_ = 0;
};

/// A named bundle of series sharing one window/capacity configuration.
/// `open()` returns a stable pointer so samplers can resolve names once
/// at setup and keep the per-sample path free of string hashing.
class TimeSeriesSet {
 public:
  TimeSeriesSet() = default;

  TimeSeriesSet(const TimeSeriesSet&) = delete;
  TimeSeriesSet& operator=(const TimeSeriesSet&) = delete;

  /// Configure window width (ticks) and per-series window capacity for
  /// series opened afterwards. Width 0 leaves sampling disabled.
  void configure(common::Ticks window, std::size_t capacity);

  common::Ticks window() const { return window_; }
  bool enabled() const { return window_ > 0; }

  /// Find-or-create; the returned pointer stays valid for the life of
  /// the set. Returns nullptr when the set is unconfigured (width 0).
  TimeSeries* open(const std::string& name);
  /// Lookup only; nullptr if the series was never opened.
  const TimeSeries* find(const std::string& name) const;

  /// Series in creation order (deterministic: creation happens on the
  /// control plane in config order).
  const std::vector<std::unique_ptr<TimeSeries>>& series() const {
    return series_;
  }

  /// CSV: series,t_s,window_s,count,avg,min,max,last — one row per
  /// retained window, series in creation order.
  std::string to_csv() const;
  /// JSONL: one {"series":...,"t_s":...} object per retained window.
  std::string to_jsonl() const;

 private:
  common::Ticks window_ = 0;
  std::size_t capacity_ = 512;
  std::vector<std::unique_ptr<TimeSeries>> series_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace penelope::telemetry
