// Online convergence and invariant probes, computed from aggregate
// samples the cluster's control-plane sampler feeds in at barriers.
// Answers the question the end-of-run summaries cannot: *when* did the
// cluster settle after a disturbance, and did any invariant drift on
// the way there.
//
// Per probe it derives:
//   - Jain's fairness index J = (Σx)² / (n·Σx²) over delivered power of
//     active nodes, and the max–min spread — the convergence signals;
//   - stranded-watts and suspicion *rates* (deltas vs the previous
//     probe over the probe interval) — the churn signals;
//   - signed conservation drift straight from the audit;
//   - cumulative energy in Joules (CPPJoules-style accounting: the
//     integral operators actually budget, not the instantaneous watts).
//
// Convergence detection: a disturbance (completion burst, fault) drives
// J below 1−ε while watts redistribute unevenly; the cluster has
// converged at the first probe where J returns to ≥ 1−ε and the time
// to converge is that probe's offset from the disturbance. If J never
// dipped, convergence is immediate (0 s).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace penelope::telemetry {

/// Aggregates for one probe, computed by the caller in a single O(N)
/// walk. "Active" nodes are those still running (not completed, not
/// crashed): completed nodes legitimately hold near-zero power and
/// would read as unfairness.
struct HealthSample {
  common::Ticks at = 0;
  std::uint64_t active_nodes = 0;
  double delivered_sum = 0.0;     // Σ delivered power over active nodes
  double delivered_sq_sum = 0.0;  // Σ delivered²
  double delivered_min = 0.0;
  double delivered_max = 0.0;
  double demand_watts = 0.0;      // Σ demand over all nodes
  double cap_watts = 0.0;         // Σ caps over all nodes
  double pool_watts = 0.0;        // pools + central cache
  double stranded_watts = 0.0;    // cumulative ledger
  double conservation_error = 0.0;  // signed, from the audit
  std::uint64_t suspicions = 0;   // cumulative detector suspicions
  double energy_joules = 0.0;     // cumulative delivered energy
};

struct HealthProbe {
  common::Ticks at = 0;
  std::uint64_t active_nodes = 0;
  double jain = 1.0;
  double spread_watts = 0.0;         // delivered max - min
  double delivered_watts = 0.0;      // Σ delivered
  double stranded_rate_wps = 0.0;    // Δstranded / Δt
  double suspicion_rate_hz = 0.0;    // Δsuspicions / Δt
  double conservation_drift = 0.0;
  double energy_joules = 0.0;
};

class HealthMonitor {
 public:
  HealthMonitor() = default;

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// `epsilon` is the convergence tolerance on 1−J. `reserve` bounds
  /// how many probes are kept allocation-free (the vector still grows
  /// beyond it if a run outlives the reservation).
  void configure(double epsilon, std::size_t reserve = 4096);

  double epsilon() const { return epsilon_; }

  void observe(const HealthSample& sample);

  const std::vector<HealthProbe>& probes() const { return probes_; }

  /// Jain index J for one sample; 1.0 for empty/zero populations.
  static double jain_index(std::uint64_t n, double sum, double sq_sum);

  /// Lowest J observed at or after `after`.
  double min_jain_since(common::Ticks after) const;

  /// Time from `disturbance` to convergence (J back at ≥ 1−ε), per the
  /// scheme above. nullopt if J dipped and never recovered, or if no
  /// probe at/after the disturbance exists.
  std::optional<double> convergence_seconds(common::Ticks disturbance) const;

  /// CSV: t_s,active,jain,spread_w,delivered_w,stranded_wps,
  /// suspicions_hz,conservation_drift,energy_j
  std::string to_csv() const;

 private:
  double epsilon_ = 0.01;
  std::vector<HealthProbe> probes_;
  HealthSample prev_;
  bool have_prev_ = false;
};

}  // namespace penelope::telemetry
