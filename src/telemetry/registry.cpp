#include "telemetry/registry.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace penelope::telemetry {

namespace detail {

unsigned this_thread_slot() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

HistogramCell::HistogramCell(double lo_in, double hi_in,
                             std::size_t buckets)
    : lo(lo_in), hi(hi_in), counts(buckets) {
  PEN_CHECK(hi > lo);
  PEN_CHECK(buckets > 0);
  bucket_width = (hi - lo) / static_cast<double>(buckets);
}

void HistogramCell::observe(double x) {
  total.fetch_add(1, std::memory_order_relaxed);
  double cur = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(cur, cur + x,
                                    std::memory_order_relaxed)) {
  }
  if (x < lo) {
    underflow.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x >= hi) {
    overflow.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo) / bucket_width);
  idx = std::min(idx, counts.size() - 1);
  counts[idx].fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

struct MetricsRegistry::Entry {
  std::string name;
  std::string help;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  std::unique_ptr<detail::CounterCell> counter;
  std::unique_ptr<detail::GaugeCell> gauge;
  std::unique_ptr<detail::HistogramCell> histogram;
};

namespace {

/// Registration key: name + labels in the caller's order. Label order is
/// part of the identity on purpose — callers register each series once
/// and cache the handle, so there is nothing to canonicalize.
std::string make_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

MetricsRegistry::MetricsRegistry(Concurrency mode) : mode_(mode) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Entry& MetricsRegistry::get_or_create(
    const std::string& name, const Labels& labels, MetricKind kind,
    const std::string& help) {
  std::scoped_lock lock(mutex_);
  std::string key = make_key(name, labels);
  auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& entry = *entries_[it->second];
    PEN_CHECK_MSG(entry.kind == kind,
                  "metric re-registered with a different kind");
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->labels = labels;
  entry->kind = kind;
  index_.emplace(std::move(key), entries_.size());
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter MetricsRegistry::counter(const std::string& name, Labels labels,
                                 const std::string& help) {
  Entry& entry = get_or_create(name, labels, MetricKind::kCounter, help);
  if (!entry.counter) {
    entry.counter = std::make_unique<detail::CounterCell>(
        mode_ == Concurrency::kSharded ? detail::kCounterShards : 1);
  }
  return Counter(entry.counter.get());
}

Gauge MetricsRegistry::gauge(const std::string& name, Labels labels,
                             const std::string& help) {
  Entry& entry = get_or_create(name, labels, MetricKind::kGauge, help);
  if (!entry.gauge) entry.gauge = std::make_unique<detail::GaugeCell>();
  return Gauge(entry.gauge.get());
}

Histogram MetricsRegistry::histogram(const std::string& name, double lo,
                                     double hi, std::size_t buckets,
                                     Labels labels,
                                     const std::string& help) {
  Entry& entry = get_or_create(name, labels, MetricKind::kHistogram, help);
  if (!entry.histogram) {
    entry.histogram =
        std::make_unique<detail::HistogramCell>(lo, hi, buckets);
  } else {
    PEN_CHECK_MSG(entry.histogram->lo == lo && entry.histogram->hi == hi &&
                      entry.histogram->counts.size() == buckets,
                  "histogram re-registered with different buckets");
  }
  return Histogram(entry.histogram.get());
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::scoped_lock lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSample sample;
    sample.name = entry->name;
    sample.help = entry->help;
    sample.labels = entry->labels;
    sample.kind = entry->kind;
    switch (entry->kind) {
      case MetricKind::kCounter:
        sample.value =
            entry->counter ? static_cast<double>(entry->counter->value())
                           : 0.0;
        break;
      case MetricKind::kGauge:
        sample.value = entry->gauge ? entry->gauge->get() : 0.0;
        break;
      case MetricKind::kHistogram: {
        HistogramSnapshot hist;
        const auto& cell = *entry->histogram;
        hist.upper_bounds.reserve(cell.counts.size());
        hist.counts.reserve(cell.counts.size());
        for (std::size_t i = 0; i < cell.counts.size(); ++i) {
          hist.upper_bounds.push_back(
              cell.lo + cell.bucket_width * static_cast<double>(i + 1));
          hist.counts.push_back(
              cell.counts[i].load(std::memory_order_relaxed));
        }
        hist.underflow = cell.underflow.load(std::memory_order_relaxed);
        hist.overflow = cell.overflow.load(std::memory_order_relaxed);
        hist.total = cell.total.load(std::memory_order_relaxed);
        hist.sum = cell.sum.load(std::memory_order_relaxed);
        sample.histogram = std::move(hist);
        break;
      }
    }
    samples.push_back(std::move(sample));
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return samples;
}

std::size_t MetricsRegistry::size() const {
  std::scoped_lock lock(mutex_);
  return entries_.size();
}

}  // namespace penelope::telemetry
