// Exporters: render a metrics snapshot as Prometheus text exposition and
// a flight-recorder journal (plus optional counter tracks) as Chrome/
// Perfetto trace-event JSON. Pure functions over value types — no
// registry or recorder internals — so sim and rt runtimes share them.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/flow_tracer.hpp"
#include "telemetry/registry.hpp"

namespace penelope::telemetry {

/// Prometheus text exposition (version 0.0.4): one `# HELP`/`# TYPE`
/// block per metric name, histograms expanded to cumulative `_bucket`
/// series plus `_sum`/`_count`. Input order does not matter; output is
/// sorted and contains no duplicate series.
std::string to_prometheus_text(const std::vector<MetricSample>& samples);

/// A numeric time series rendered as a Perfetto "C" counter track
/// (e.g. one node's cap or pool level over the run).
struct CounterTrack {
  std::string name;
  std::vector<std::pair<common::Ticks, double>> points;
};

/// Chrome trace-event JSON (the "traceEvents" array format Perfetto and
/// chrome://tracing load directly). Each transaction becomes an "X"
/// complete event on the minting node's track spanning first-to-last
/// recorded hop, with the per-hop journal in args; strand/duplicate/
/// unknown-txn events additionally become flow-terminating "i" instants
/// so lost power is visible at a glance. Ticks are microseconds, which
/// is exactly the trace-event `ts` unit.
///
/// `flows` (the PowerFlowTracer snapshot) renders on its own process
/// track: every hop becomes a 1 µs "X" slice on its endpoint's thread,
/// and each flow id with two or more hops is stitched through them with
/// "s"/"t"/"f" flow events — the arrows Perfetto draws across the
/// federation tree. Hops with flow 0 ("unknown origin", e.g. a binding
/// table overflow) keep their slice but get no arrow.
std::string to_perfetto_json(const std::vector<TxnRecord>& events,
                             const std::vector<CounterTrack>& tracks = {},
                             const std::vector<FlowHop>& flows = {});

}  // namespace penelope::telemetry
