#include "telemetry/flight_recorder.hpp"

#include <algorithm>

namespace penelope::telemetry {

const char* txn_event_name(TxnEventKind kind) {
  switch (kind) {
    case TxnEventKind::kRequestSent: return "request_sent";
    case TxnEventKind::kRequestServed: return "request_served";
    case TxnEventKind::kGrantReceived: return "grant_received";
    case TxnEventKind::kLateGrant: return "late_grant";
    case TxnEventKind::kTimeout: return "timeout";
    case TxnEventKind::kApplied: return "applied";
    case TxnEventKind::kBanked: return "banked";
    case TxnEventKind::kStranded: return "stranded";
    case TxnEventKind::kDuplicateDropped: return "duplicate_dropped";
    case TxnEventKind::kUnknownTxn: return "unknown_txn";
    case TxnEventKind::kDonationSent: return "donation_sent";
    case TxnEventKind::kDonationReceived: return "donation_received";
    case TxnEventKind::kPushSent: return "push_sent";
    case TxnEventKind::kPushReceived: return "push_received";
    case TxnEventKind::kPeerSuspected: return "peer_suspected";
    case TxnEventKind::kPeerDeclaredDead: return "peer_declared_dead";
    case TxnEventKind::kFalseSuspicion: return "false_suspicion";
    case TxnEventKind::kPeerRejoined: return "peer_rejoined";
    case TxnEventKind::kReclaimed: return "reclaimed";
  }
  return "unknown";
}

void FlightRecorder::enable(std::size_t capacity) {
  std::scoped_lock lock(mutex_);
  capacity_.store(capacity, std::memory_order_relaxed);
  ring_.clear();
  ring_.reserve(capacity);
  head_ = 0;
}

void FlightRecorder::record_slow(const TxnRecord& record) {
  std::scoped_lock lock(mutex_);
  std::size_t cap = capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return;
  if (ring_.size() < cap) {
    ring_.push_back(record);
  } else {
    ring_[head_ % cap] = record;
  }
  ++head_;
}

std::vector<TxnRecord> FlightRecorder::snapshot() const {
  std::scoped_lock lock(mutex_);
  std::size_t cap = capacity_.load(std::memory_order_relaxed);
  std::vector<TxnRecord> out;
  out.reserve(ring_.size());
  if (cap == 0 || ring_.size() < cap) {
    out = ring_;
  } else {
    std::size_t start = head_ % cap;
    for (std::size_t i = 0; i < cap; ++i)
      out.push_back(ring_[(start + i) % cap]);
  }
  return out;
}

std::vector<TxnRecord> FlightRecorder::for_txn(std::uint64_t txn_id) const {
  std::vector<TxnRecord> all = snapshot();
  std::vector<TxnRecord> out;
  std::copy_if(all.begin(), all.end(), std::back_inserter(out),
               [txn_id](const TxnRecord& r) { return r.txn_id == txn_id; });
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  std::scoped_lock lock(mutex_);
  return head_;
}

std::uint64_t FlightRecorder::dropped() const {
  std::scoped_lock lock(mutex_);
  return head_ > ring_.size() ? head_ - ring_.size() : 0;
}

}  // namespace penelope::telemetry
