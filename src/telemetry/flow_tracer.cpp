#include "telemetry/flow_tracer.hpp"

#include <algorithm>

namespace penelope::telemetry {

void PowerFlowTracer::enable(std::size_t capacity) {
  std::scoped_lock lock(mutex_);
  capacity_.store(capacity, std::memory_order_relaxed);
  ring_.clear();
  ring_.resize(capacity);
  head_ = 0;
  bindings_.clear();
  if (capacity > 0) bindings_.reserve(4 * capacity);
}

void PowerFlowTracer::record_slow(const FlowHop& hop) {
  std::scoped_lock lock(mutex_);
  std::size_t cap = capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return;  // raced with disable
  ring_[head_ % cap] = hop;
  ++head_;
}

void PowerFlowTracer::bind(std::uint64_t txn, std::uint64_t flow) {
  if (capacity() == 0 || flow == 0) return;
  std::scoped_lock lock(mutex_);
  std::size_t cap = capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return;
  if (bindings_.size() >= 4 * cap) bindings_.clear();
  bindings_[txn] = flow;
}

std::uint64_t PowerFlowTracer::flow_of(std::uint64_t txn) const {
  if (capacity() == 0) return 0;
  std::scoped_lock lock(mutex_);
  auto it = bindings_.find(txn);
  return it == bindings_.end() ? 0 : it->second;
}

std::vector<FlowHop> PowerFlowTracer::snapshot() const {
  std::scoped_lock lock(mutex_);
  std::size_t cap = capacity_.load(std::memory_order_relaxed);
  std::vector<FlowHop> out;
  if (cap == 0) return out;
  std::size_t n = std::min<std::uint64_t>(head_, cap);
  out.reserve(n);
  std::uint64_t start = head_ - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % cap]);
  }
  return out;
}

std::uint64_t PowerFlowTracer::recorded() const {
  std::scoped_lock lock(mutex_);
  return head_;
}

std::uint64_t PowerFlowTracer::dropped() const {
  std::scoped_lock lock(mutex_);
  std::size_t cap = capacity_.load(std::memory_order_relaxed);
  return cap == 0 || head_ <= cap ? 0 : head_ - cap;
}

}  // namespace penelope::telemetry
