// Transaction flight recorder — a bounded ring journal of power-
// transaction lifecycle events. When the conservation audit reports a
// stranded watt, the recorder answers "which transaction, between which
// nodes, at what time" instead of leaving a bare aggregate.
//
// Disabled by default (capacity 0): `record()` is a single branch, so
// hot paths can call it unconditionally without perturbing the golden
// trace or the overhead bench. Enabled, it keeps the most recent
// `capacity` events under a mutex — the same serialization discipline as
// rt::Mailbox, so it is safe from any thread and clean under TSan.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/units.hpp"

namespace penelope::telemetry {

enum class TxnEventKind : std::uint8_t {
  kRequestSent,       // requester -> peer PowerRequest
  kRequestServed,     // peer granted watts out of its pool
  kGrantReceived,     // requester got the grant within the window
  kLateGrant,         // grant for an already-resolved request (banked)
  kTimeout,           // requester gave up on an outstanding request
  kApplied,           // watts raised the local cap
  kBanked,            // watts deposited into the local pool
  kStranded,          // watts lost in flight, ledgered as stranded
  kDuplicateDropped,  // at-most-once window rejected a redelivery
  kUnknownTxn,        // grant for a txn the requester never tracked
  kDonationSent,      // client -> central server donation
  kDonationReceived,  // central server absorbed a donation
  kPushSent,          // unsolicited push/gossip departed
  kPushReceived,      // unsolicited push/gossip absorbed
  kPeerSuspected,     // detector: peer missed suspect_after_missed beats
  kPeerDeclaredDead,  // detector: peer missed dead_after_missed beats
  kFalseSuspicion,    // suspected/dead peer spoke at the same incarnation
  kPeerRejoined,      // peer returned at a higher incarnation
  kReclaimed,         // stranded watts of a dead peer re-entered a pool
};

/// Stable lowercase name for exporters ("request_sent", "stranded", ...).
const char* txn_event_name(TxnEventKind kind);

struct TxnRecord {
  common::Ticks at = 0;
  std::uint64_t txn_id = 0;
  TxnEventKind kind = TxnEventKind::kRequestSent;
  std::int32_t node = -1;  // node observing the event
  std::int32_t peer = -1;  // other endpoint, -1 if none/unknown
  double watts = 0.0;
};

class FlightRecorder {
 public:
  FlightRecorder() = default;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Start recording into a ring of `capacity` events (0 disables and
  /// discards anything previously recorded).
  void enable(std::size_t capacity);
  bool enabled() const { return capacity() != 0; }
  std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  void record(common::Ticks at, std::uint64_t txn_id, TxnEventKind kind,
              std::int32_t node, std::int32_t peer, double watts) {
    if (capacity() == 0) return;
    record_slow(TxnRecord{at, txn_id, kind, node, peer, watts});
  }

  /// Events oldest-to-newest. At most `capacity` entries; earlier events
  /// beyond that have been overwritten (see dropped()).
  std::vector<TxnRecord> snapshot() const;

  /// Every retained event for one transaction, oldest-to-newest.
  std::vector<TxnRecord> for_txn(std::uint64_t txn_id) const;

  /// Total events ever recorded while enabled.
  std::uint64_t recorded() const;
  /// Events overwritten by ring wrap-around.
  std::uint64_t dropped() const;

 private:
  void record_slow(const TxnRecord& record);

  // Relaxed atomic so the disabled fast path is one unfenced load even
  // when rt threads call record() concurrently with configuration.
  std::atomic<std::size_t> capacity_{0};
  mutable std::mutex mutex_;
  std::vector<TxnRecord> ring_;
  std::uint64_t head_ = 0;  // total recorded; ring_[head_ % capacity_] next
};

}  // namespace penelope::telemetry
