// Unified metrics registry — the one place every runtime (discrete-event
// cluster, rt::ThreadCluster, rt::UdpPenelopeNode) registers its
// observables, so exporters see a single namespace instead of three
// hand-rolled counter structs.
//
// Usage contract:
//   * register once — `counter()/gauge()/histogram()` get-or-create by
//     (name, labels) and hand back a cheap value-type handle; callers
//     cache the handle and never touch the registry on hot paths.
//   * update lock-free — handles write relaxed atomics only. Counters
//     are sharded across cache lines by thread (one shard in
//     kSingleThread mode, a small padded array in kSharded mode) so two
//     deciders bumping the same counter never bounce a line.
//   * snapshot anywhere — `snapshot()` aggregates shards into plain
//     values; exporters (telemetry/export.hpp) render Prometheus text or
//     Perfetto counter tracks from the same sample vector.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace penelope::telemetry {

/// How many threads will update handles concurrently. kSingleThread
/// keeps one shard per counter (the simulator); kSharded pads counters
/// across kCounterShards cache lines (the rt runtimes).
enum class Concurrency { kSingleThread, kSharded };

using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

inline constexpr unsigned kCounterShards = 8;  // power of two

/// Stable small slot per thread, used to pick a counter shard. Process-
/// wide monotone assignment: thread N gets slot N (mod shard count).
unsigned this_thread_slot();

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

struct CounterCell {
  explicit CounterCell(unsigned shards) : shards(shards) {}
  std::vector<CounterShard> shards;

  void add(std::uint64_t delta) {
    unsigned idx = shards.size() == 1
                       ? 0
                       : this_thread_slot() &
                             (static_cast<unsigned>(shards.size()) - 1);
    shards[idx].value.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards)
      total += shard.value.load(std::memory_order_relaxed);
    return total;
  }
};

struct GaugeCell {
  std::atomic<double> value{0.0};

  void set(double v) { value.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value.load(std::memory_order_relaxed);
    while (!value.compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
    }
  }
  double get() const { return value.load(std::memory_order_relaxed); }
};

struct HistogramCell {
  HistogramCell(double lo, double hi, std::size_t buckets);

  double lo;
  double hi;
  double bucket_width;
  std::vector<std::atomic<std::uint64_t>> counts;
  std::atomic<std::uint64_t> underflow{0};
  std::atomic<std::uint64_t> overflow{0};
  std::atomic<std::uint64_t> total{0};
  std::atomic<double> sum{0.0};

  void observe(double x);
};

}  // namespace detail

/// Monotone event count. Handles are trivially copyable; a default-
/// constructed handle is a no-op sink (metrics wired but not registered).
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t delta = 1) {
    if (cell_ != nullptr) cell_->add(delta);
  }
  std::uint64_t value() const { return cell_ != nullptr ? cell_->value() : 0; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Point-in-time value (watts in a pool, in-flight ledger, queue depth).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (cell_ != nullptr) cell_->set(v);
  }
  void add(double delta) {
    if (cell_ != nullptr) cell_->add(delta);
  }
  double value() const { return cell_ != nullptr ? cell_->get() : 0.0; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Fixed-width-bucket distribution (latency, grant sizes). Underflow
/// lands in the first exported bucket; overflow only in +Inf.
class Histogram {
 public:
  Histogram() = default;
  void observe(double x) {
    if (cell_ != nullptr) cell_->observe(x);
  }
  std::uint64_t count() const {
    return cell_ != nullptr ? cell_->total.load(std::memory_order_relaxed)
                            : 0;
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

struct HistogramSnapshot {
  /// Per-bucket upper bounds (ascending) and non-cumulative counts.
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  std::uint64_t total = 0;
  double sum = 0.0;
};

struct MetricSample {
  std::string name;
  std::string help;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  /// Counter (cast to double) or gauge value; unused for histograms.
  double value = 0.0;
  std::optional<HistogramSnapshot> histogram;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(Concurrency mode = Concurrency::kSingleThread);
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. Re-registering the same (name, labels) returns a
  /// handle to the same cell; registering it as a different kind aborts.
  Counter counter(const std::string& name, Labels labels = {},
                  const std::string& help = "");
  Gauge gauge(const std::string& name, Labels labels = {},
              const std::string& help = "");
  Histogram histogram(const std::string& name, double lo, double hi,
                      std::size_t buckets, Labels labels = {},
                      const std::string& help = "");

  /// Aggregated point-in-time view of every registered metric, sorted by
  /// (name, labels) so exports are deterministic.
  std::vector<MetricSample> snapshot() const;

  std::size_t size() const;

 private:
  struct Entry;
  Entry& get_or_create(const std::string& name, const Labels& labels,
                       MetricKind kind, const std::string& help);

  Concurrency mode_;
  mutable std::mutex mutex_;  // registration + snapshot only, never updates
  std::vector<std::unique_ptr<Entry>> entries_;
  std::unordered_map<std::string, std::size_t> index_;  // key -> entries_ idx
};

}  // namespace penelope::telemetry
