// Causal power-flow tracing — the FlightRecorder answers "what happened
// to transaction T"; the flow tracer answers "where did this watt come
// from and where did it go". A *flow* is the journey of a parcel of
// power through the system: minted when watts first leave a node
// (release/push), threaded through pool banking, federation transfers
// (wire tags 10/11 carry the id), and grants, and terminated when a
// node applies the watts to its cap. Exported as Perfetto flow events
// (`s`/`t`/`f`) the trace UI renders as connected arrows across the
// federation tree.
//
// Messages whose wire format does not carry a flow id (PowerPush,
// PowerGrant) resolve it through the bounded txn→flow binding table:
// the sender binds its txn id before the send, the receiver looks it up
// on delivery. Under the sharded engine this is safe without any
// ordering subtlety: a message sent in window W delivers no earlier
// than window W+1 (the window width equals the network latency floor),
// and a barrier separates the two, so the bind always happens-before
// the lookup.
//
// Same discipline as FlightRecorder: capacity 0 (the default) makes
// every call a single relaxed load + branch, so hot paths call it
// unconditionally; enabled, a mutex-guarded ring keeps the most recent
// `capacity` hops.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace penelope::telemetry {

enum class FlowHopKind : std::uint8_t {
  kSource,  // flow minted: watts released / deficit first reported
  kStep,    // intermediate hop: banked, transferred, granted
  kSink,    // watts applied to a node cap — the flow's terminus
};

/// One observation of a flow at an endpoint. `node` is the observing
/// endpoint (node id, or pool id in the federation's n_nodes+p space);
/// `peer` is the other endpoint of the hop (-1 if none). `label` must
/// be a string literal ("push", "grant", "xfer_up", ...).
struct FlowHop {
  common::Ticks at = 0;
  std::uint64_t flow = 0;
  FlowHopKind kind = FlowHopKind::kStep;
  std::int32_t node = -1;
  std::int32_t peer = -1;
  double watts = 0.0;
  const char* label = "";
};

class PowerFlowTracer {
 public:
  PowerFlowTracer() = default;

  PowerFlowTracer(const PowerFlowTracer&) = delete;
  PowerFlowTracer& operator=(const PowerFlowTracer&) = delete;

  /// Start tracing into a ring of `capacity` hops (0 disables and
  /// discards hops and bindings).
  void enable(std::size_t capacity);
  bool enabled() const { return capacity() != 0; }
  std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  void record(common::Ticks at, std::uint64_t flow, FlowHopKind kind,
              std::int32_t node, std::int32_t peer, double watts,
              const char* label) {
    if (capacity() == 0) return;
    record_slow(FlowHop{at, flow, kind, node, peer, watts, label});
  }

  /// Remember that transaction `txn` carries flow `flow`, so a receiver
  /// of a flow-less wire message can recover the id. The table is
  /// bounded at 4×capacity entries; when full it is cleared wholesale
  /// (old in-flight txns then resolve to flow 0 — "unknown origin" —
  /// which the exporter renders as an unconnected hop, never an error).
  void bind(std::uint64_t txn, std::uint64_t flow);
  /// Flow bound to `txn`, or 0 if unknown.
  std::uint64_t flow_of(std::uint64_t txn) const;

  /// Hops oldest-to-newest (at most `capacity`; see dropped()).
  std::vector<FlowHop> snapshot() const;
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

 private:
  void record_slow(const FlowHop& hop);

  std::atomic<std::size_t> capacity_{0};
  mutable std::mutex mutex_;
  std::vector<FlowHop> ring_;
  std::uint64_t head_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> bindings_;
};

}  // namespace penelope::telemetry
