#include "telemetry/time_series.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace penelope::telemetry {

TimeSeries::TimeSeries(std::string name, common::Ticks window,
                       std::size_t capacity)
    : name_(std::move(name)),
      window_(window),
      capacity_(capacity < 2 ? 2 : capacity) {
  PEN_CHECK(window > 0);
  // Reserved once here so the steady-state sample path never touches
  // the allocator (downsampling merges in place).
  windows_.reserve(capacity_);
}

bool TimeSeries::merge_into_tail(common::Ticks start, double value) {
  if (windows_.empty() || windows_.back().start != start) return false;
  SeriesWindow& w = windows_.back();
  w.sum += value;
  if (value < w.min) w.min = value;
  if (value > w.max) w.max = value;
  w.last = value;
  ++w.count;
  return true;
}

void TimeSeries::sample(common::Ticks at, double value) {
  ++total_samples_;
  common::Ticks start = (at / window_) * window_;
  if (merge_into_tail(start, value)) return;
  PEN_DCHECK(windows_.empty() || start > windows_.back().start);
  if (windows_.size() == capacity_) {
    downsample();
    // Doubling the width may fold this sample into the re-aligned tail.
    start = (at / window_) * window_;
    if (merge_into_tail(start, value)) return;
  }
  windows_.push_back(SeriesWindow{start, value, value, value, value, 1});
}

void TimeSeries::downsample() {
  window_ *= 2;
  std::size_t out = 0;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    common::Ticks start = (windows_[i].start / window_) * window_;
    if (out > 0 && windows_[out - 1].start == start) {
      SeriesWindow& w = windows_[out - 1];
      const SeriesWindow& s = windows_[i];
      w.sum += s.sum;
      if (s.min < w.min) w.min = s.min;
      if (s.max > w.max) w.max = s.max;
      w.last = s.last;  // input windows are time-ordered
      w.count += s.count;
    } else {
      windows_[out] = windows_[i];
      windows_[out].start = start;
      ++out;
    }
  }
  windows_.resize(out);
}

void TimeSeriesSet::configure(common::Ticks window, std::size_t capacity) {
  PEN_CHECK(series_.empty());  // configure before opening series
  window_ = window;
  if (capacity >= 2) capacity_ = capacity;
}

TimeSeries* TimeSeriesSet::open(const std::string& name) {
  if (window_ == 0) return nullptr;
  auto it = index_.find(name);
  if (it != index_.end()) return series_[it->second].get();
  index_.emplace(name, series_.size());
  series_.push_back(
      std::make_unique<TimeSeries>(name, window_, capacity_));
  return series_.back().get();
}

const TimeSeries* TimeSeriesSet::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : series_[it->second].get();
}

std::string TimeSeriesSet::to_csv() const {
  std::string out = "series,t_s,window_s,count,avg,min,max,last\n";
  char line[256];
  for (const auto& s : series_) {
    double width_s = common::to_seconds(s->window_width());
    for (const SeriesWindow& w : s->windows()) {
      std::snprintf(line, sizeof line,
                    "%s,%.6f,%.6f,%llu,%.9g,%.9g,%.9g,%.9g\n",
                    s->name().c_str(), common::to_seconds(w.start),
                    width_s, static_cast<unsigned long long>(w.count),
                    w.avg(), w.min, w.max, w.last);
      out += line;
    }
  }
  return out;
}

std::string TimeSeriesSet::to_jsonl() const {
  std::string out;
  char line[320];
  for (const auto& s : series_) {
    double width_s = common::to_seconds(s->window_width());
    for (const SeriesWindow& w : s->windows()) {
      std::snprintf(
          line, sizeof line,
          "{\"series\":\"%s\",\"t_s\":%.6f,\"window_s\":%.6f,"
          "\"count\":%llu,\"avg\":%.9g,\"min\":%.9g,\"max\":%.9g,"
          "\"last\":%.9g}\n",
          s->name().c_str(), common::to_seconds(w.start), width_s,
          static_cast<unsigned long long>(w.count), w.avg(), w.min,
          w.max, w.last);
      out += line;
    }
  }
  return out;
}

}  // namespace penelope::telemetry
