// Abstract power measurement / capping interface.
//
// §3.3 of the paper: "Penelope only requires an interface through which
// power can be read and node-level powercaps can be set. Therefore,
// Penelope [can] easily be adapted to work with any power capping
// interface." This is that interface. The deciders and all managers are
// written against it; behind it sits either the simulated RAPL model
// (power/simulated_rapl.hpp) or the real Linux intel-rapl powercap
// backend (power/sysfs_rapl.hpp).
//
// Semantics follow RAPL's energy-counter style: read_average_power()
// returns the mean power dissipated since the *previous* call (or since
// construction for the first call), which is exactly the P the local
// decider compares against its cap each period.
#pragma once

#include "common/units.hpp"

namespace penelope::power {

/// Safe operating range for a node-level powercap, in watts. The decider
/// enforces this range regardless of what transactions would allow
/// (§3: "local deciders ... can ensure that nodes do not exceed that safe
/// range").
struct SafeRange {
  double min_watts = 80.0;   // 40 W/socket x 2 sockets
  double max_watts = 250.0;  // 125 W/socket x 2 sockets

  double clamp(double w) const {
    return common::clamp_watts(w, min_watts, max_watts);
  }
  bool contains(double w) const {
    return w >= min_watts - common::kWattEpsilon &&
           w <= max_watts + common::kWattEpsilon;
  }
};

class PowerInterface {
 public:
  virtual ~PowerInterface() = default;

  /// Set the node-level powercap. Implementations clamp to the safe
  /// range; the value actually applied is returned by cap().
  virtual void set_cap(double watts) = 0;

  /// The currently enforced powercap.
  virtual double cap() const = 0;

  /// Mean power since the previous call to read_average_power() (or
  /// since construction), at time `now`.
  virtual double read_average_power(common::Ticks now) = 0;

  /// Instantaneous power estimate at `now` (for metrics/diagnostics).
  virtual double instantaneous_power(common::Ticks now) = 0;

  virtual const SafeRange& safe_range() const = 0;
};

}  // namespace penelope::power
