#include "power/sysfs_rapl.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/check.hpp"
#include "common/log.hpp"

namespace penelope::power {

namespace fs = std::filesystem;

namespace {

std::int64_t monotonic_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool read_file_string(const std::string& path, std::string* out) {
  std::ifstream f(path);
  if (!f) return false;
  std::getline(f, *out);
  return true;
}

bool read_file_double(const std::string& path, double* out) {
  std::string s;
  if (!read_file_string(path, &s)) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != s.c_str();
}

bool write_file_u64(const std::string& path, std::uint64_t value) {
  std::ofstream f(path);
  if (!f) return false;
  f << value;
  return static_cast<bool>(f);
}

}  // namespace

SysfsRapl::SysfsRapl(SysfsRaplConfig config) : config_(std::move(config)) {
  discover();
  cap_ = config_.safe_range.max_watts;
  last_read_us_ = monotonic_us();
  if (available()) {
    bool ok = false;
    for (auto& pkg : packages_) {
      double e = 0.0;
      if (read_file_double(pkg.energy_path, &e)) pkg.last_energy_uj = e;
    }
    (void)read_total_energy_uj(&ok);
  }
}

void SysfsRapl::discover() {
  std::error_code ec;
  fs::directory_iterator it(config_.powercap_root, ec);
  if (ec) {
    PEN_LOG_INFO("sysfs-rapl: %s not accessible (%s)",
                 config_.powercap_root.c_str(), ec.message().c_str());
    return;
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    // Package domains are intel-rapl:<n> (subdomains have a second colon
    // segment, e.g. intel-rapl:0:0 for core — we want packages only).
    if (name.rfind("intel-rapl:", 0) != 0) continue;
    if (name.find(':', std::string("intel-rapl:").size()) !=
        std::string::npos)
      continue;

    Package pkg;
    pkg.energy_path = (entry.path() / "energy_uj").string();
    pkg.limit_path =
        (entry.path() / "constraint_0_power_limit_uw").string();
    double e = 0.0;
    if (!read_file_double(pkg.energy_path, &e)) continue;
    pkg.last_energy_uj = e;
    double max_e = 0.0;
    if (read_file_double((entry.path() / "max_energy_range_uj").string(),
                         &max_e))
      pkg.max_energy_uj = max_e;
    packages_.push_back(std::move(pkg));
  }
  // Probe writability by re-writing the current limit value.
  cap_writable_ = !packages_.empty();
  for (const auto& pkg : packages_) {
    double cur = 0.0;
    if (!read_file_double(pkg.limit_path, &cur) ||
        !write_file_u64(pkg.limit_path,
                        static_cast<std::uint64_t>(cur))) {
      cap_writable_ = false;
      break;
    }
  }
  PEN_LOG_INFO("sysfs-rapl: found %zu package domain(s), caps %s",
               packages_.size(),
               cap_writable_ ? "writable" : "read-only");
}

void SysfsRapl::set_cap(double watts) {
  cap_ = config_.safe_range.clamp(watts);
  if (!cap_writable_) return;
  double per_pkg_uw = cap_ * 1e6 / static_cast<double>(packages_.size());
  for (const auto& pkg : packages_) {
    if (!write_file_u64(pkg.limit_path,
                        static_cast<std::uint64_t>(per_pkg_uw))) {
      PEN_LOG_WARN("sysfs-rapl: failed writing %s",
                   pkg.limit_path.c_str());
    }
  }
}

double SysfsRapl::read_total_energy_uj(bool* ok) {
  *ok = true;
  double total_delta = 0.0;
  for (auto& pkg : packages_) {
    double e = 0.0;
    if (!read_file_double(pkg.energy_path, &e)) {
      *ok = false;
      continue;
    }
    double delta = e - pkg.last_energy_uj;
    if (delta < 0.0 && pkg.max_energy_uj > 0.0)
      delta += pkg.max_energy_uj;  // counter wrapped
    pkg.last_energy_uj = e;
    total_delta += delta;
  }
  return total_delta;
}

double SysfsRapl::read_average_power(common::Ticks /*now*/) {
  if (!available()) return 0.0;
  std::int64_t now_us = monotonic_us();
  double interval_s = static_cast<double>(now_us - last_read_us_) / 1e6;
  bool ok = false;
  double delta_uj = read_total_energy_uj(&ok);
  last_read_us_ = now_us;
  if (!ok || interval_s <= 0.0) return last_interval_power_;
  last_interval_power_ = delta_uj / 1e6 / interval_s;
  return last_interval_power_;
}

double SysfsRapl::instantaneous_power(common::Ticks now) {
  // Best effort on real hardware: the most recent interval average.
  if (last_interval_power_ == 0.0) return read_average_power(now);
  return last_interval_power_;
}

}  // namespace penelope::power
