#include "power/performance_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace penelope::power {

PerformanceModel::PerformanceModel(PerformanceModelConfig config)
    : config_(config) {
  PEN_CHECK(config_.alpha > 0.0 && config_.alpha <= 1.0);
  PEN_CHECK(config_.base_fraction >= 0.0 && config_.base_fraction < 1.0);
}

double PerformanceModel::speed(double delivered_watts,
                               double demand_watts) const {
  if (demand_watts <= 0.0) return 1.0;
  if (delivered_watts >= demand_watts) return 1.0;
  double base = config_.base_fraction * demand_watts;
  if (delivered_watts <= base) return 0.0;
  double effective =
      (delivered_watts - base) / (demand_watts - base);
  return std::pow(effective, config_.alpha);
}

double PerformanceModel::power_for_speed(double speed,
                                         double demand_watts) const {
  speed = std::clamp(speed, 0.0, 1.0);
  if (demand_watts <= 0.0) return 0.0;
  if (speed >= 1.0) return demand_watts;
  double base = config_.base_fraction * demand_watts;
  return base +
         std::pow(speed, 1.0 / config_.alpha) * (demand_watts - base);
}

}  // namespace penelope::power
