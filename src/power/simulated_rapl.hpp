// Simulated RAPL: first-order power dynamics behind the PowerInterface.
//
// The actual package power p(t) relaxes exponentially toward a target
//     target = max(idle, min(demand, cap))
// with time constant tau. Zhang's RAPL evaluation (cited as [48] in the
// paper) measures convergence "on average in under 0.5 s"; tau = 0.15 s
// gives 95% convergence in ~0.45 s, matching that. Between events both
// demand and cap are constant, so the trajectory and its energy integral
// are analytic — the model is exact regardless of how sparsely the
// simulator samples it:
//     p(t0+dt)  = target + (p0 - target) e^{-dt/tau}
//     E(dt)     = target dt + (p0 - target) tau (1 - e^{-dt/tau})
//
// Demand is pushed in by the workload driver (set_demand); caps are set
// by whichever power manager owns the node. Reads may add Gaussian noise
// to mimic counter quantisation; experiments default to a small nonzero
// noise, tests mostly run with zero.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "power/power_interface.hpp"

namespace penelope::power {

struct SimulatedRaplConfig {
  SafeRange safe_range;
  /// Exponential time constant of the capping loop.
  double tau_seconds = 0.15;
  /// Package floor power when the node is idle.
  double idle_watts = 40.0;
  /// Stddev of Gaussian noise added to each average-power read.
  double read_noise_watts = 0.0;
  /// Initial powercap; clamped to the safe range.
  double initial_cap_watts = 200.0;
  /// Initial demand (idle until the workload starts).
  double initial_demand_watts = 40.0;
  std::uint64_t seed = 11;
};

class SimulatedRapl final : public PowerInterface {
 public:
  explicit SimulatedRapl(SimulatedRaplConfig config);

  // PowerInterface:
  void set_cap(double watts) override;
  double cap() const override { return cap_; }
  double read_average_power(common::Ticks now) override;
  double instantaneous_power(common::Ticks now) override;
  const SafeRange& safe_range() const override {
    return config_.safe_range;
  }

  /// Workload-side input: the power the application *wants* to draw.
  void set_demand(double watts, common::Ticks now);
  double demand() const { return demand_; }

  /// Energy in joules accumulated since construction, advanced to `now`.
  double total_energy_joules(common::Ticks now);

  /// The power the dynamics are currently converging toward.
  double target_power() const;

  /// Instantaneous power and cumulative energy at `now` as a pure read:
  /// the same closed form advance() commits, evaluated without mutating
  /// the state. This is the telemetry sampler's view — an observer must
  /// not perturb the model, not even by the ulp-level drift a committed
  /// mid-interval advance introduces (exp(-a)*exp(-b) != exp(-(a+b)) in
  /// floats). Inline and one exp for both values; when the trajectory
  /// has converged to within 1 uW of its target the exp is skipped —
  /// the sub-microwatt tail is far below measurement resolution.
  struct PowerEnergy {
    double power = 0.0;
    double energy_joules = 0.0;
  };
  /// The closed form shared by peek() and the cluster's telemetry
  /// mirror: both must produce bit-identical values from the same
  /// anchor, so there is exactly one implementation.
  static PowerEnergy extrapolate(double power0, double energy0,
                                 double dt_seconds, double target,
                                 double tau_seconds) {
    if (dt_seconds <= 0.0) return {power0, energy0};
    double gap = power0 - target;
    if (gap < 1e-6 && gap > -1e-6)
      return {target, energy0 + target * dt_seconds};
    double decay = std::exp(-dt_seconds / tau_seconds);
    return {target + gap * decay,
            energy0 + target * dt_seconds +
                gap * tau_seconds * (1.0 - decay)};
  }
  PowerEnergy peek(common::Ticks now) const {
    double target =
        std::max(config_.idle_watts, std::min(demand_, cap_));
    double dt =
        now <= last_ ? 0.0 : common::to_seconds(now - last_);
    return extrapolate(power_, energy_joules_, dt, target,
                       config_.tau_seconds);
  }

  /// The committed state peek() extrapolates from: instantaneous power
  /// and cumulative energy at the last advance, and when that was. The
  /// telemetry mirror snapshots this on dirty nodes instead of walking
  /// live objects every sample.
  struct Anchor {
    double power = 0.0;
    double energy_joules = 0.0;
    common::Ticks last = 0;
  };
  Anchor anchor() const { return {power_, energy_joules_, last_}; }

  /// Observability hook: when set, every state mutation writes 1 to
  /// `cell` so the telemetry sampler knows to re-snapshot this node.
  /// Null (the default) keeps the mutators' cost unchanged.
  void set_observer_dirty(std::uint8_t* cell) { observer_dirty_ = cell; }

 private:
  /// Integrate the trajectory forward to `now`, accumulating energy.
  void advance(common::Ticks now);

  void mark_dirty() {
    if (observer_dirty_) *observer_dirty_ = 1;
  }

  SimulatedRaplConfig config_;
  common::Rng rng_;
  std::uint8_t* observer_dirty_ = nullptr;
  double cap_;
  double demand_;
  double power_;                    ///< instantaneous power at t = last_
  common::Ticks last_ = 0;          ///< time the state was last advanced
  double energy_joules_ = 0.0;      ///< since construction
  double energy_at_last_read_ = 0.0;
  common::Ticks last_read_time_ = 0;
};

}  // namespace penelope::power
