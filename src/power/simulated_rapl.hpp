// Simulated RAPL: first-order power dynamics behind the PowerInterface.
//
// The actual package power p(t) relaxes exponentially toward a target
//     target = max(idle, min(demand, cap))
// with time constant tau. Zhang's RAPL evaluation (cited as [48] in the
// paper) measures convergence "on average in under 0.5 s"; tau = 0.15 s
// gives 95% convergence in ~0.45 s, matching that. Between events both
// demand and cap are constant, so the trajectory and its energy integral
// are analytic — the model is exact regardless of how sparsely the
// simulator samples it:
//     p(t0+dt)  = target + (p0 - target) e^{-dt/tau}
//     E(dt)     = target dt + (p0 - target) tau (1 - e^{-dt/tau})
//
// Demand is pushed in by the workload driver (set_demand); caps are set
// by whichever power manager owns the node. Reads may add Gaussian noise
// to mimic counter quantisation; experiments default to a small nonzero
// noise, tests mostly run with zero.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"
#include "power/power_interface.hpp"

namespace penelope::power {

struct SimulatedRaplConfig {
  SafeRange safe_range;
  /// Exponential time constant of the capping loop.
  double tau_seconds = 0.15;
  /// Package floor power when the node is idle.
  double idle_watts = 40.0;
  /// Stddev of Gaussian noise added to each average-power read.
  double read_noise_watts = 0.0;
  /// Initial powercap; clamped to the safe range.
  double initial_cap_watts = 200.0;
  /// Initial demand (idle until the workload starts).
  double initial_demand_watts = 40.0;
  std::uint64_t seed = 11;
};

class SimulatedRapl final : public PowerInterface {
 public:
  explicit SimulatedRapl(SimulatedRaplConfig config);

  // PowerInterface:
  void set_cap(double watts) override;
  double cap() const override { return cap_; }
  double read_average_power(common::Ticks now) override;
  double instantaneous_power(common::Ticks now) override;
  const SafeRange& safe_range() const override {
    return config_.safe_range;
  }

  /// Workload-side input: the power the application *wants* to draw.
  void set_demand(double watts, common::Ticks now);
  double demand() const { return demand_; }

  /// Energy in joules accumulated since construction, advanced to `now`.
  double total_energy_joules(common::Ticks now);

  /// The power the dynamics are currently converging toward.
  double target_power() const;

 private:
  /// Integrate the trajectory forward to `now`, accumulating energy.
  void advance(common::Ticks now);

  SimulatedRaplConfig config_;
  common::Rng rng_;
  double cap_;
  double demand_;
  double power_;                    ///< instantaneous power at t = last_
  common::Ticks last_ = 0;          ///< time the state was last advanced
  double energy_joules_ = 0.0;      ///< since construction
  double energy_at_last_read_ = 0.0;
  common::Ticks last_read_time_ = 0;
};

}  // namespace penelope::power
