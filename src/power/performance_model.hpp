// Power → application-performance model.
//
// §2.1: "powercaps have a proportional, albeit non-linear relationship to
// application performance". The standard first-order account: capping
// forces frequency down, dynamic power scales superlinearly with
// frequency, so performance is a *concave* function of delivered power —
// giving a starved node 10 W back buys more speed than taking 10 W from a
// well-fed node costs. That concavity is what makes power shifting win at
// all, so it is the property this model must get right.
//
// Model: an application phase with power demand d running under delivered
// power p progresses at
//     speed(p, d) = 1                         if p >= d
//                 = ((p - f·d) / ((1-f)·d))^α if f·d < p < d
//                 = 0                         if p <= f·d
// where f is the fraction of demand that is "base" power buying no
// progress (uncore, DRAM refresh, leakage) and α ∈ (0, 1] sets the
// concavity (α = 1 is linear in the effective band; α ≈ 0.5 matches the
// frequency-vs-power cube-root folklore closely enough for shape studies).
#pragma once

namespace penelope::power {

struct PerformanceModelConfig {
  /// Concavity exponent α in (0, 1].
  double alpha = 0.5;
  /// Fraction of demand that is progress-free base power, in [0, 1).
  double base_fraction = 0.25;
};

class PerformanceModel {
 public:
  PerformanceModel() = default;
  explicit PerformanceModel(PerformanceModelConfig config);

  /// Progress rate in [0, 1]: fraction of full speed achieved when the
  /// node draws `delivered_watts` against a phase demanding
  /// `demand_watts`. Demand <= 0 means an idle phase that progresses at
  /// full speed regardless of power.
  double speed(double delivered_watts, double demand_watts) const;

  /// Inverse-ish helper: the delivered power needed to achieve `speed`
  /// against `demand_watts` (clamped to [0,1]); used by tests and by the
  /// oscillation ablation to reason about equilibria.
  double power_for_speed(double speed, double demand_watts) const;

  const PerformanceModelConfig& config() const { return config_; }

 private:
  PerformanceModelConfig config_;
};

}  // namespace penelope::power
