// Real Intel RAPL backend via the Linux powercap sysfs interface
// (/sys/class/powercap/intel-rapl:N). Reads the energy_uj counters of
// every package domain and writes constraint_0_power_limit_uw to set
// caps. This is the backend a deployment on actual Skylake nodes (the
// paper's testbed) would use; on machines without intel-rapl (or without
// write permission) available() reports false and callers fall back to
// SimulatedRapl — examples/live_threads.cpp demonstrates the fallback.
//
// Caps here are *node-level* (summed across packages) to match the rest
// of the library; writes split the node cap evenly across packages, the
// same policy the paper's per-socket settings imply.
#pragma once

#include <string>
#include <vector>

#include "power/power_interface.hpp"

namespace penelope::power {

struct SysfsRaplConfig {
  /// Base directory; overridable for tests (a fake sysfs tree).
  std::string powercap_root = "/sys/class/powercap";
  SafeRange safe_range;
};

class SysfsRapl final : public PowerInterface {
 public:
  explicit SysfsRapl(SysfsRaplConfig config);

  /// True if at least one intel-rapl package domain with a readable
  /// energy counter was found. set_cap additionally requires the limit
  /// files to be writable; see cap_writable().
  bool available() const { return !packages_.empty(); }
  bool cap_writable() const { return cap_writable_; }
  std::size_t package_count() const { return packages_.size(); }

  // PowerInterface:
  void set_cap(double watts) override;
  double cap() const override { return cap_; }
  double read_average_power(common::Ticks now) override;
  double instantaneous_power(common::Ticks now) override;
  const SafeRange& safe_range() const override {
    return config_.safe_range;
  }

 private:
  struct Package {
    std::string energy_path;
    std::string limit_path;
    double max_energy_uj = 0.0;  ///< counter wrap point
    double last_energy_uj = 0.0;
  };

  void discover();
  double read_total_energy_uj(bool* ok);

  SysfsRaplConfig config_;
  std::vector<Package> packages_;
  bool cap_writable_ = false;
  double cap_ = 0.0;
  // Wall-clock of the previous energy read (microseconds, CLOCK_MONOTONIC
  // based). Real hardware runs in real time; the `now` parameter of the
  // interface is ignored here.
  std::int64_t last_read_us_ = 0;
  double last_interval_power_ = 0.0;
};

}  // namespace penelope::power
