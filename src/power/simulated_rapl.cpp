#include "power/simulated_rapl.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace penelope::power {

SimulatedRapl::SimulatedRapl(SimulatedRaplConfig config)
    : config_(config), rng_(config.seed) {
  PEN_CHECK(config_.tau_seconds > 0.0);
  PEN_CHECK(config_.idle_watts >= 0.0);
  cap_ = config_.safe_range.clamp(config_.initial_cap_watts);
  demand_ = std::max(config_.initial_demand_watts, 0.0);
  power_ = std::min(demand_, cap_);
  power_ = std::max(power_, config_.idle_watts);
}

double SimulatedRapl::target_power() const {
  return std::max(config_.idle_watts, std::min(demand_, cap_));
}

void SimulatedRapl::advance(common::Ticks now) {
  PEN_CHECK_MSG(now >= last_, "power model cannot run backwards");
  if (now == last_) return;
  mark_dirty();
  double dt = common::to_seconds(now - last_);
  double target = target_power();
  double decay = std::exp(-dt / config_.tau_seconds);
  // Analytic energy of the exponential approach over [last_, now].
  energy_joules_ += target * dt +
                    (power_ - target) * config_.tau_seconds * (1.0 - decay);
  power_ = target + (power_ - target) * decay;
  last_ = now;
}

void SimulatedRapl::set_cap(double watts) {
  // Cap changes take effect from "now" onwards; callers advance the model
  // implicitly on their next read. We cannot advance here because the
  // interface has no time parameter — the managers always read power (and
  // thus advance) before adjusting caps within a control period, so the
  // trajectory between the read and the cap write is the stale-cap one,
  // which is also what real RAPL does (the new limit applies from the MSR
  // write onwards).
  cap_ = config_.safe_range.clamp(watts);
  mark_dirty();
}

void SimulatedRapl::set_demand(double watts, common::Ticks now) {
  advance(now);
  demand_ = std::max(watts, 0.0);
  mark_dirty();
}

double SimulatedRapl::read_average_power(common::Ticks now) {
  advance(now);
  double interval = common::to_seconds(now - last_read_time_);
  double avg;
  if (interval <= 0.0) {
    avg = power_;  // two reads at the same instant: report instantaneous
  } else {
    avg = (energy_joules_ - energy_at_last_read_) / interval;
  }
  energy_at_last_read_ = energy_joules_;
  last_read_time_ = now;
  if (config_.read_noise_watts > 0.0) {
    avg += rng_.normal(0.0, config_.read_noise_watts);
    avg = std::max(avg, 0.0);
  }
  return avg;
}

double SimulatedRapl::instantaneous_power(common::Ticks now) {
  advance(now);
  return power_;
}

double SimulatedRapl::total_energy_joules(common::Ticks now) {
  advance(now);
  return energy_joules_;
}

}  // namespace penelope::power
